package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"step/internal/harness"
	"step/internal/scenario"
	"step/internal/store"
)

// openStream connects to a job's NDJSON stream and returns a reader of
// decoded events plus a closer.
func openStream(t *testing.T, url string) (*bufio.Scanner, func()) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		resp.Body.Close()
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return sc, func() { resp.Body.Close() }
}

// nextEvent decodes one stream line; ok is false at EOF.
func nextEvent(t *testing.T, sc *bufio.Scanner) (StreamEvent, bool) {
	t.Helper()
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return StreamEvent{}, false
	}
	var ev StreamEvent
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatalf("bad stream line %q: %v", sc.Text(), err)
	}
	return ev, true
}

// drainStream reads events until the terminal done event (which is
// returned last in the slice). It fails if the stream ends without one.
func drainStream(t *testing.T, sc *bufio.Scanner) []StreamEvent {
	t.Helper()
	var evs []StreamEvent
	for {
		ev, ok := nextEvent(t, sc)
		if !ok {
			t.Fatalf("stream ended without a done event (%d events)", len(evs))
		}
		evs = append(evs, ev)
		if ev.Type == EventDone {
			return evs
		}
	}
}

// reassembleStream builds the finished table from a drained stream:
// exactly one start event, every row index exactly once, notes from
// the terminal event.
func reassembleStream(t *testing.T, evs []StreamEvent) *harness.Table {
	t.Helper()
	var start *StreamEvent
	var rows []StreamEvent
	done := evs[len(evs)-1]
	if done.Type != EventDone {
		t.Fatalf("last event is %q, want done", done.Type)
	}
	for i := range evs[:len(evs)-1] {
		switch ev := &evs[i]; ev.Type {
		case EventStart:
			if start != nil {
				t.Fatal("two start events")
			}
			start = ev
		case EventRow:
			rows = append(rows, *ev)
		case EventProgress:
		default:
			t.Fatalf("unexpected event type %q", ev.Type)
		}
	}
	if start == nil {
		t.Fatal("no start event")
	}
	tb := &harness.Table{ID: start.SpecID, Title: start.Title, Header: start.Header, Notes: done.Notes}
	tb.Rows = make([][]string, start.RowsTotal)
	for _, r := range rows {
		if r.Index < 0 || r.Index >= start.RowsTotal {
			t.Fatalf("row index %d outside [0,%d)", r.Index, start.RowsTotal)
		}
		if tb.Rows[r.Index] != nil {
			t.Fatalf("row %d streamed twice", r.Index)
		}
		tb.Rows[r.Index] = r.Cells
	}
	for i, r := range tb.Rows {
		if r == nil {
			t.Fatalf("row %d never streamed", i)
		}
	}
	return tb
}

// TestHTTPStreamRoundTrip is the service half of the streaming
// acceptance gate: the NDJSON stream of a live sweep, reassembled in
// index order, must be byte-identical to the stored table and CSV, and
// the committed entry must carry a replayable journal.
func TestHTTPStreamRoundTrip(t *testing.T) {
	srv, st := newTestServer(t, Options{Executors: 2, Workers: 4})
	resp, err := http.Post(srv.URL+"/sweeps?name=gqa-ratio&seed=7&quick=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()

	sc, closeBody := openStream(t, srv.URL+"/sweeps/"+job.ID+"/stream")
	defer closeBody()
	evs := drainStream(t, sc)
	done := evs[len(evs)-1]
	if done.State != string(StateDone) {
		t.Fatalf("terminal state %q (%s), want done", done.State, done.Error)
	}
	got := reassembleStream(t, evs)

	code, table, _ := get(t, srv.URL+"/sweeps/"+job.ID+"/table")
	if code != http.StatusOK {
		t.Fatalf("table: %d", code)
	}
	if got.String() != table {
		t.Fatalf("reassembled stream diverges from stored table:\ngot:\n%s\nwant:\n%s", got.String(), table)
	}
	code, csv, _ := get(t, srv.URL+"/sweeps/"+job.ID+"/table?format=csv")
	if code != http.StatusOK || got.CSV() != csv {
		t.Fatalf("reassembled CSV diverges from stored CSV (%d)", code)
	}

	// The committed entry carries its journal for replay.
	recs, ok, err := st.ReadRows(job.Key)
	if err != nil || !ok {
		t.Fatalf("committed entry has no journal: ok=%t err=%v", ok, err)
	}
	if recs[0].Type != "start" || recs[len(recs)-1].Type != "done" {
		t.Fatalf("journal shape: first=%q last=%q", recs[0].Type, recs[len(recs)-1].Type)
	}
}

// TestHTTPStreamTwoSubscribers is the concurrency acceptance test (run
// under -race): two subscribers — one connected before the sweep makes
// progress, one joining late — must observe identical event sequences.
func TestHTTPStreamTwoSubscribers(t *testing.T) {
	srv, _ := newTestServer(t, Options{Executors: 1, Workers: 2})
	body := strings.NewReader(`{
		"id": "two-subs", "kind": "attention", "models": ["qwen", "mixtral"],
		"scale": 8, "batch": 4, "kv_mean": 256, "regions": 2,
		"strategies": ["static-coarse", "dynamic"]}`)
	resp, err := http.Post(srv.URL+"/sweeps?seed=7&quick=1", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()
	if job.ID == "" {
		t.Fatalf("submit rejected: %+v", job)
	}
	url := srv.URL + "/sweeps/" + job.ID + "/stream"

	early, closeEarly := openStream(t, url)
	defer closeEarly()
	// Read one event on the early stream before the late subscriber
	// joins, so the two genuinely start at different points of the run.
	first, ok := nextEvent(t, early)
	if !ok {
		t.Fatal("early stream closed immediately")
	}

	var late []StreamEvent
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc, closeLate := openStream(t, url)
		defer closeLate()
		late = drainStream(t, sc)
	}()
	evs := append([]StreamEvent{first}, drainStream(t, early)...)
	wg.Wait()

	if len(evs) != len(late) {
		t.Fatalf("early saw %d events, late saw %d", len(evs), len(late))
	}
	for i := range evs {
		a, _ := json.Marshal(evs[i])
		b, _ := json.Marshal(late[i])
		if string(a) != string(b) {
			t.Fatalf("event %d diverges:\nearly: %s\nlate:  %s", i, a, b)
		}
	}
	reassembleStream(t, evs) // both sequences carry the complete table
}

// TestHTTPStreamCancelMidSweep: canceling a running job terminates its
// stream with a canceled event and leaves nothing at the result's
// content address — no entry, no partial journal.
func TestHTTPStreamCancelMidSweep(t *testing.T) {
	srv, st := newTestServer(t, Options{Executors: 1, Workers: 1})
	// A long full-resolution sweep (big KV means, every point sequential):
	// the cancel below must land while points are still running even on a
	// fast, loaded machine.
	slow := slowSpec()
	slow.KVMeans = []float64{2048, 4096, 8192}
	spec, err := json.Marshal(slow)
	if err != nil {
		t.Fatal(err)
	}
	// Full (non-quick) resolution: long enough that the cancel below
	// always lands mid-sweep; only the in-flight point runs to completion.
	resp, err := http.Post(srv.URL+"/sweeps?seed=7", "application/json", strings.NewReader(string(spec)))
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()

	sc, closeBody := openStream(t, srv.URL+"/sweeps/"+job.ID+"/stream")
	defer closeBody()
	// Wait for evidence the sweep is actually running, then cancel.
	if _, ok := nextEvent(t, sc); !ok {
		t.Fatal("stream closed before any event")
	}
	cresp, err := http.Post(srv.URL+"/sweeps/"+job.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()

	var done StreamEvent
	for {
		ev, ok := nextEvent(t, sc)
		if !ok {
			t.Fatal("stream ended without a terminal event")
		}
		if ev.Type == EventDone {
			done = ev
			break
		}
	}
	if done.State != string(StateCanceled) {
		t.Fatalf("terminal state %q, want canceled", done.State)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("canceled sweep left cache entries: %v", keys)
	}
	ents, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), "tmp-") {
			t.Fatalf("canceled sweep left a partial journal: %s", de.Name())
		}
	}
}

// TestHTTPStreamCachedReplay: a job answered from the cache streams the
// full row sequence synthesized from the stored journal — coords
// included — ending in a cached terminal event.
func TestHTTPStreamCachedReplay(t *testing.T) {
	srv, _ := newTestServer(t, Options{Executors: 2, Workers: 2})
	resp, err := http.Post(srv.URL+"/sweeps?name=gqa-ratio&seed=7&quick=1&wait=2m", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	first := decodeJob(t, resp.Body)
	resp.Body.Close()
	if first.State != StateDone {
		t.Fatalf("first run: %s (%s)", first.State, first.Error)
	}
	sc1, close1 := openStream(t, srv.URL+"/sweeps/"+first.ID+"/stream")
	defer close1()
	live := reassembleStream(t, drainStream(t, sc1))

	resp, err = http.Post(srv.URL+"/sweeps?name=gqa-ratio&seed=7&quick=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	second := decodeJob(t, resp.Body)
	resp.Body.Close()
	if second.State != StateCached {
		t.Fatalf("second run: %s, want cached", second.State)
	}
	sc2, close2 := openStream(t, srv.URL+"/sweeps/"+second.ID+"/stream")
	defer close2()
	evs := drainStream(t, sc2)
	done := evs[len(evs)-1]
	if done.State != string(StateCached) {
		t.Fatalf("cached terminal state %q", done.State)
	}
	replayed := reassembleStream(t, evs)
	if replayed.String() != live.String() || replayed.CSV() != live.CSV() {
		t.Fatalf("cached replay diverges from live stream:\nlive:\n%s\nreplay:\n%s", live.String(), replayed.String())
	}
	for _, ev := range evs {
		if ev.Type == EventRow && ev.Coords["model"] == "" {
			t.Fatalf("journal replay dropped coords: %+v", ev)
		}
	}
}

// TestHTTPStreamPlainPutReplay: entries written without a journal (the
// CLI's Put path) still replay — header and rows recovered from the
// stored CSV, title and notes from the table text.
func TestHTTPStreamPlainPutReplay(t *testing.T) {
	st, err := store.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	sp := scenario.GQARatio()
	tb, err := scenario.Run(sp, harness.Suite{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	entry, err := store.NewEntry(sp, 7, true, tb.String(), tb.CSV(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(entry); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), entry.Manifest.Key, "rows.ndjson")); err == nil {
		t.Fatal("plain Put wrote a journal; this test needs the CSV fallback")
	}

	svc := New(st, Options{Executors: 2, Workers: 2})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })
	resp, err := http.Post(srv.URL+"/sweeps?name=gqa-ratio&seed=7&quick=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()
	if job.State != StateCached {
		t.Fatalf("state %s, want cached", job.State)
	}
	sc, closeBody := openStream(t, srv.URL+"/sweeps/"+job.ID+"/stream")
	defer closeBody()
	got := reassembleStream(t, drainStream(t, sc))
	if got.String() != tb.String() {
		t.Fatalf("CSV-fallback replay diverges:\ngot:\n%s\nwant:\n%s", got.String(), tb.String())
	}
}

// TestHTTPStreamUnknownJob: streaming a nonexistent id is a clean 404.
func TestHTTPStreamUnknownJob(t *testing.T) {
	srv, _ := newTestServer(t, Options{Executors: 1, Workers: 1})
	code, body, _ := get(t, srv.URL+"/sweeps/job-999/stream")
	if code != http.StatusNotFound {
		t.Fatalf("GET stream of unknown job: %d %s", code, body)
	}
}
