package service

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"step/internal/scenario"
	"step/internal/store"
)

// tinySpec is a one-point attention sweep that simulates in
// milliseconds — the unit-test workload.
func tinySpec(t *testing.T, id string) scenario.Spec {
	t.Helper()
	sp, err := scenario.Parse([]byte(`{
		"id": "` + id + `", "kind": "attention", "models": ["qwen"],
		"scale": 8, "batch": 4, "kv_mean": 128, "regions": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// slowSpec is a sweep long enough (hundreds of milliseconds: the GQA
// family re-run per verification-matrix cell) to hold an executor busy
// while a test submits and cancels around it.
func slowSpec() scenario.Spec {
	sp := scenario.GQARatio()
	sp.WorkersAxis = []int{1, 2, 4}
	return sp
}

func newTestService(t *testing.T, opts Options) (*Service, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	s := New(st, opts)
	t.Cleanup(s.Close)
	return s, st
}

// wait blocks for the job's terminal state.
func wait(t *testing.T, s *Service, id string) Job {
	t.Helper()
	ch, ok := s.Finished(id)
	if !ok {
		t.Fatalf("unknown job %s", id)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish", id)
	}
	job, _ := s.Get(id)
	return job
}

func TestJobLifecycleAndCacheHit(t *testing.T) {
	s, st := newTestService(t, Options{Executors: 2, Workers: 2})
	sp := tinySpec(t, "life")

	first, err := s.Submit(sp, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	job := wait(t, s, first.ID)
	if job.State != StateDone {
		t.Fatalf("state %s (%s), want done", job.State, job.Error)
	}
	if job.PointsTotal != sp.PointCount(true) || job.PointsDone != job.PointsTotal {
		t.Fatalf("progress %d/%d, want %d/%d", job.PointsDone, job.PointsTotal, sp.PointCount(true), sp.PointCount(true))
	}
	entry, err := s.Table(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(entry.Table, "== life:") {
		t.Fatalf("table does not render the sweep: %q", entry.Table)
	}

	// Identical resubmission: served from the store, byte-identical,
	// nothing re-simulated (the fast path answers before any executor).
	second, err := s.Submit(sp, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateCached {
		t.Fatalf("resubmission state %s, want cached", second.State)
	}
	cached, err := s.Table(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Table != entry.Table || cached.CSV != entry.CSV {
		t.Fatal("cached table differs from the computed one")
	}

	// A semantically-equal spelling of the spec shares the address.
	eq, err := scenario.Parse([]byte(`{
		"id": "life", "kind": "attention", "models": ["Qwen3"],
		"scale": 8, "batch": 4, "kv_mean": 128, "regions": 2,
		"strategies": ["dynamic-parallel"], "kv_variance": "medium"}`))
	if err != nil {
		t.Fatal(err)
	}
	third, err := s.Submit(eq, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if third.State != StateCached || third.Key != first.Key {
		t.Fatalf("equal spec not served from cache: state=%s key match=%v", third.State, third.Key == first.Key)
	}

	// Different seed: different address, fresh run.
	other, err := s.Submit(sp, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if other.Key == first.Key {
		t.Fatal("different seed shares a cache key")
	}
	if got := wait(t, s, other.ID); got.State != StateDone {
		t.Fatalf("state %s, want done", got.State)
	}
	keys, err := st.Keys()
	if err != nil || len(keys) != 2 {
		t.Fatalf("store keys %v (%v), want 2 entries", keys, err)
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	s, _ := newTestService(t, Options{Executors: 1})
	bad := tinySpec(t, "bad")
	bad.Kind = "warp-drive"
	if _, err := s.Submit(bad, 7, true); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestFailedJobReportsError(t *testing.T) {
	s, _ := newTestService(t, Options{Executors: 1})
	// Valid at parse time, fails at run time: the compare header
	// override length is only checked against the rendered sweep.
	sp := tinySpec(t, "boom")
	sp.Header = []string{"just-one", "two", "three"}
	job, err := s.Submit(sp, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	got := wait(t, s, job.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "header override") {
		t.Fatalf("state=%s err=%q, want failed with the run error", got.State, got.Error)
	}
	if _, err := s.Table(job.ID); err == nil {
		t.Fatal("failed job served a table")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, _ := newTestService(t, Options{Executors: 1, Workers: 2})
	blocker, err := s.Submit(slowSpec(), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	// The single executor is busy with the blocker, so this job sits
	// queued; cancellation must kill it without an executor's help.
	queued, err := s.Submit(tinySpec(t, "queued"), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(queued.ID) {
		t.Fatal("cancel reported unknown job")
	}
	got := wait(t, s, queued.ID)
	if got.State != StateCanceled {
		t.Fatalf("state %s, want canceled", got.State)
	}
	if got.PointsDone != 0 {
		t.Fatalf("canceled-while-queued job ran %d points", got.PointsDone)
	}
	if b := wait(t, s, blocker.ID); b.State != StateDone {
		t.Fatalf("blocker state %s (%s)", b.State, b.Error)
	}
}

func TestCancelRunningJobStopsDispatch(t *testing.T) {
	s, _ := newTestService(t, Options{Executors: 1, Workers: 1})
	job, err := s.Submit(slowSpec(), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the executor to pick it up, then cancel mid-sweep.
	deadline := time.Now().Add(time.Minute)
	for {
		got, _ := s.Get(job.ID)
		if got.State == StateRunning {
			break
		}
		if got.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job never ran: %s", got.State)
		}
		time.Sleep(time.Millisecond)
	}
	if !s.Cancel(job.ID) {
		t.Fatal("cancel reported unknown job")
	}
	got := wait(t, s, job.ID)
	if got.State != StateCanceled {
		t.Fatalf("state %s (%s), want canceled", got.State, got.Error)
	}
	if got.PointsDone >= got.PointsTotal {
		t.Fatalf("cancellation did not stop dispatch: %d/%d points ran", got.PointsDone, got.PointsTotal)
	}
	if _, err := s.Table(job.ID); err == nil {
		t.Fatal("canceled job served a table")
	}
	if s.Cancel("job-does-not-exist") {
		t.Fatal("cancel of unknown job reported success")
	}
}

func TestQueueFull(t *testing.T) {
	s, _ := newTestService(t, Options{Executors: 1, Workers: 2, QueueCap: 1})
	blocker, err := s.Submit(slowSpec(), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	// Ensure the executor holds the blocker (not the queue slot).
	deadline := time.Now().Add(time.Minute)
	for {
		got, _ := s.Get(blocker.ID)
		if got.State == StateRunning {
			break
		}
		if got.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("blocker never ran: %s", got.State)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(tinySpec(t, "fits"), 7, true); err != nil {
		t.Fatalf("queue slot rejected: %v", err)
	}
	job, err := s.Submit(tinySpec(t, "overflow"), 7, true)
	if err == nil {
		t.Fatal("overflowing submit succeeded")
	}
	if job.State != StateFailed {
		t.Fatalf("overflow job state %s, want failed", job.State)
	}
}

// TestHistoryPruning: finished jobs are forgotten past MaxHistory so a
// long-lived server's registry stays bounded; the newest jobs survive.
func TestHistoryPruning(t *testing.T) {
	s, _ := newTestService(t, Options{Executors: 2, Workers: 2, MaxHistory: 3})
	var ids []string
	for i := 0; i < 6; i++ {
		job, err := s.Submit(tinySpec(t, fmt.Sprintf("hist-%d", i)), 7, true)
		if err != nil {
			t.Fatal(err)
		}
		wait(t, s, job.ID)
		ids = append(ids, job.ID)
	}
	if got := len(s.List()); got > 3 {
		t.Fatalf("registry holds %d jobs, want at most MaxHistory=3", got)
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Fatal("oldest job survived pruning")
	}
	if _, ok := s.Get(ids[len(ids)-1]); !ok {
		t.Fatal("newest job was pruned")
	}
}

func TestListOrdersBySubmission(t *testing.T) {
	s, _ := newTestService(t, Options{Executors: 2, Workers: 2})
	a, _ := s.Submit(tinySpec(t, "list-a"), 7, true)
	b, _ := s.Submit(tinySpec(t, "list-b"), 7, true)
	wait(t, s, a.ID)
	wait(t, s, b.ID)
	jobs := s.List()
	if len(jobs) != 2 || jobs[0].ID != a.ID || jobs[1].ID != b.ID {
		t.Fatalf("list out of order: %+v", jobs)
	}
}
