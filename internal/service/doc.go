// Package service turns scenario sweeps into addressable jobs: a
// bounded queue of executors runs submitted specs on one shared
// harness worker pool, results land in a content-addressed store
// (internal/store), and repeated submissions of a semantically-equal
// spec are served from the cache without re-simulation. The HTTP
// surface over the same queue lives in http.go; `stepctl serve` and
// `stepctl sweep -cache` are thin wrappers.
//
// Job lifecycle: queued -> running -> done | failed | canceled, or
// queued -> cached when the store (or a concurrent job computing the
// same key) already holds the result. Submissions of a key that is
// already in flight do not re-simulate: they wait for the running job
// and read its stored result (single-flight). Job listings and
// shutdown iterate IDs in sorted order, never map order — the same
// determinism discipline stepvet enforces statically inside the sim
// packages (make lint).
//
// # Streaming
//
// GET /sweeps/{id}/stream serves a job's results as they land: chunked
// NDJSON, one StreamEvent per line. A successful stream is
//
//	{"type":"start", ...}        table identity and shape: spec/job ids,
//	                             title, header, rows_total, points_total
//	{"type":"row", "index":i, "cells":[...], "coords":{...}}
//	                             one rendered table row; rows arrive in
//	                             completion order, index is the row's
//	                             final position in the table
//	{"type":"progress", "points_done":n}
//	                             per-point sweep progress
//	{"type":"done", "state":"done|cached", "notes":[...], "elapsed_ms":e}
//	                             terminal; failed and canceled jobs end
//	                             with state failed|canceled and an error
//
// Rows reassembled in index order are byte-identical to the stored
// table (`stepctl watch` does exactly this). Every subscriber of a job
// observes the same event sequence: events buffer per job, late
// subscribers replay the buffered prefix and then follow live. Jobs
// that finished without broadcasting rows — cached submissions,
// single-flight followers — synthesize their replay from the store's
// row journal (or, for journal-less entries, the stored CSV).
//
// Invariants:
//
//   - One worker pool: every executor draws simulation parallelism
//     from the same bounded harness pool, so total CPU use stays
//     capped regardless of how many jobs run concurrently.
//   - Cache soundness rests on the scenario package's determinism
//     guarantee — equal canonical spec bytes (plus seed and quick
//     mode) imply byte-identical tables — so serving a stored result
//     is indistinguishable from re-simulating.
//   - Jobs are immutable once terminal: a job that reached done,
//     failed, canceled, or cached never changes state again, and its
//     result bytes are never rewritten.
package service
