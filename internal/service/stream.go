package service

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"net/http"
	"strings"
	"sync"

	"step/internal/store"
)

// Stream event types, in the order a successful stream delivers them:
// one start, interleaved row and progress events as points land, one
// terminal done event.
const (
	EventStart    = "start"
	EventRow      = "row"
	EventProgress = "progress"
	EventDone     = "done"
)

// StreamEvent is one line of the GET /sweeps/{id}/stream NDJSON feed.
// Fields are populated by Type: start carries the job identity and
// table shape; row carries one rendered table row (Index is its final
// position — rows arrive in completion order); progress counts
// completed harness points; done is terminal and carries the job's
// final state ("done", "cached", "failed", or "canceled"), the table
// notes on success, and the error otherwise.
type StreamEvent struct {
	Type string `json:"type"`

	// start
	JobID       string   `json:"job_id,omitempty"`
	SpecID      string   `json:"spec_id,omitempty"`
	Key         string   `json:"key,omitempty"`
	Title       string   `json:"title,omitempty"`
	Header      []string `json:"header,omitempty"`
	RowsTotal   int      `json:"rows_total,omitempty"`
	PointsTotal int      `json:"points_total,omitempty"`

	// row (Index is meaningful only here)
	Index  int               `json:"index"`
	Cells  []string          `json:"cells,omitempty"`
	Coords map[string]string `json:"coords,omitempty"`

	// progress
	PointsDone int `json:"points_done,omitempty"`

	// done
	State     string   `json:"state,omitempty"`
	Notes     []string `json:"notes,omitempty"`
	Error     string   `json:"error,omitempty"`
	ElapsedMS int64    `json:"elapsed_ms,omitempty"`
}

// broadcast is a per-job append-only event buffer: the executor
// publishes, any number of subscribers read by cursor. A subscriber
// that arrives late replays the buffered prefix instantly and then
// follows live — every subscriber observes the same sequence. The
// buffer closes when the terminal done event lands and is bounded by
// the sweep's row/point count, which MaxHistory bounds in aggregate.
type broadcast struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []StreamEvent
	closed bool
}

func newBroadcast() *broadcast {
	b := &broadcast{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// publish appends an event and wakes subscribers. Events after the
// terminal one are dropped (e.g. a progress tick racing cancellation).
func (b *broadcast) publish(ev StreamEvent) {
	b.mu.Lock()
	if !b.closed {
		b.events = append(b.events, ev)
		if ev.Type == EventDone {
			b.closed = true
		}
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// next returns the event at cursor i, blocking until it exists. ok is
// false when the stream is closed and drained, or ctx is done; pair
// with wakeOn(ctx) so cancellation interrupts the wait.
func (b *broadcast) next(ctx context.Context, i int) (StreamEvent, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i >= len(b.events) && !b.closed && ctx.Err() == nil {
		b.cond.Wait()
	}
	if i < len(b.events) && ctx.Err() == nil {
		return b.events[i], true
	}
	return StreamEvent{}, false
}

// wakeOn arranges for ctx's cancellation to wake blocked next calls;
// the returned stop releases the arrangement.
func (b *broadcast) wakeOn(ctx context.Context) func() bool {
	return context.AfterFunc(ctx, b.cond.Broadcast)
}

// handleStream serves GET /sweeps/{id}/stream: chunked NDJSON, one
// StreamEvent per line. Subscribers joining mid-run replay every
// already-landed event and then follow live; subscribers to a job that
// finished without broadcasting rows (cached at submit, single-flight
// follower, or done before this server buffered anything) get the row
// sequence synthesized from the stored entry, so every successful
// stream carries the full table regardless of who simulated it. The
// stream always ends with a done event — state done/cached on
// success, failed/canceled otherwise — unless the client disconnects.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	write := func(ev StreamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	ctx := r.Context()
	stop := j.bc.wakeOn(ctx)
	defer stop()
	sawRow := false
	for i := 0; ; i++ {
		ev, ok := j.bc.next(ctx, i)
		if !ok {
			return // client disconnected
		}
		if ev.Type == EventRow {
			sawRow = true
		}
		if ev.Type == EventDone && !sawRow &&
			(ev.State == string(StateDone) || ev.State == string(StateCached)) {
			s.replayStream(write, j, ev)
			return
		}
		if !write(ev) {
			return
		}
		if ev.Type == EventDone {
			return
		}
	}
}

// replayStream synthesizes the start/row sequence of a successful job
// whose broadcast buffered no rows, then writes the terminal event.
// Entries committed through a journal replay exactly the original
// stream (coords included); entries written by a plain Put fall back
// to the stored CSV and table text.
func (s *Service) replayStream(write func(StreamEvent) bool, j *job, terminal StreamEvent) {
	recs, ok, err := s.st.ReadRows(j.key)
	if err == nil && ok {
		for _, rec := range recs {
			switch rec.Type {
			case "start":
				if !write(StreamEvent{
					Type: EventStart, JobID: j.id, SpecID: rec.SpecID, Key: j.key,
					Title: rec.Title, Header: rec.Header,
					RowsTotal: rec.Rows, PointsTotal: rec.Points,
				}) {
					return
				}
			case "row":
				if !write(StreamEvent{Type: EventRow, Index: rec.Index, Cells: rec.Cells, Coords: rec.Coords}) {
					return
				}
			case "done":
				if len(terminal.Notes) == 0 {
					terminal.Notes = rec.Notes
				}
			}
		}
		write(terminal)
		return
	}
	entry, ok, err := s.st.Get(j.key)
	if err != nil || !ok {
		terminal.State = string(StateFailed)
		terminal.Error = "result evicted from store"
		write(terminal)
		return
	}
	header, rows, rerr := parseCSVTable(entry.CSV)
	if rerr != nil {
		terminal.State = string(StateFailed)
		terminal.Error = rerr.Error()
		write(terminal)
		return
	}
	title, notes := parseTableText(entry.Table)
	if !write(StreamEvent{
		Type: EventStart, JobID: j.id, SpecID: entry.Manifest.SpecID, Key: j.key,
		Title: title, Header: header,
		RowsTotal: len(rows), PointsTotal: entry.Manifest.Points,
	}) {
		return
	}
	for i, cells := range rows {
		if !write(StreamEvent{Type: EventRow, Index: i, Cells: cells}) {
			return
		}
	}
	if len(terminal.Notes) == 0 {
		terminal.Notes = notes
	}
	write(terminal)
}

// parseCSVTable splits a stored table.csv into header and rows.
func parseCSVTable(text string) ([]string, [][]string, error) {
	recs, err := csv.NewReader(strings.NewReader(text)).ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(recs) == 0 {
		return nil, nil, nil
	}
	return recs[0], recs[1:], nil
}

// parseTableText recovers the title and notes from a stored table.txt
// ("== id: title ==" first line, "-- note" trailing lines).
func parseTableText(text string) (string, []string) {
	var title string
	var notes []string
	for i, line := range strings.Split(text, "\n") {
		if i == 0 {
			if t, ok := strings.CutPrefix(line, "== "); ok {
				t = strings.TrimSuffix(t, " ==")
				if _, rest, ok := strings.Cut(t, ": "); ok {
					title = rest
				}
			}
			continue
		}
		if n, ok := strings.CutPrefix(line, "-- "); ok {
			notes = append(notes, n)
		}
	}
	return title, notes
}

// journalRecord converts a stream event into its journal form.
func journalRecord(ev StreamEvent) store.JournalRecord {
	switch ev.Type {
	case EventStart:
		return store.JournalRecord{
			Type: "start", SpecID: ev.SpecID, Title: ev.Title,
			Header: ev.Header, Rows: ev.RowsTotal, Points: ev.PointsTotal,
		}
	case EventRow:
		return store.JournalRecord{Type: "row", Index: ev.Index, Cells: ev.Cells, Coords: ev.Coords}
	default:
		return store.JournalRecord{Type: ev.Type, Notes: ev.Notes}
	}
}
