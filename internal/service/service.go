package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"step/internal/fabric"
	"step/internal/harness"
	"step/internal/scenario"
	"step/internal/store"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"   // simulated by this job, result stored
	StateCached   State = "cached" // served from the store, nothing simulated
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateCached, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Options configures a Service.
type Options struct {
	// Executors bounds how many sweeps run concurrently (default 2).
	Executors int
	// Workers sizes the harness token pool all executors share (0 =
	// one per CPU). Per the harness's calling-goroutine rule, each
	// executor is itself one implicit worker, so total simulation
	// concurrency is bounded by (Workers - 1) shared tokens plus
	// Executors implicit workers. With Workers 1 (or a single CPU)
	// there is no shared pool: each sweep — including each cell of a
	// spec's workers_axis verification matrix — bounds its own
	// concurrency instead.
	Workers int
	// SimWorkers selects the DES engine per simulation (see harness).
	SimWorkers int
	// QueueCap bounds queued-but-not-started jobs (default 256); Submit
	// fails fast once the backlog is full.
	QueueCap int
	// MaxHistory bounds retained job records (default 1024): past it,
	// the oldest *terminal* jobs are forgotten — their results stay in
	// the store, but their ids answer 404. Queued and running jobs are
	// never evicted, so a long-lived server's memory stays bounded by
	// history + backlog instead of growing with total traffic.
	MaxHistory int
	// GitDescribe is recorded in result manifests (best-effort).
	GitDescribe string
	// Fabric configures the distributed-sweep coordinator (lease and
	// worker TTLs). Zero values select the fabric defaults; with no
	// workers joined the fabric is inert and every point runs locally.
	Fabric fabric.Options
}

// Job is an immutable snapshot of one submission.
type Job struct {
	ID     string `json:"id"`
	SpecID string `json:"spec_id"`
	Key    string `json:"key"` // content address (store key)
	Seed   uint64 `json:"seed"`
	Quick  bool   `json:"quick"`
	State  State  `json:"state"`
	// PointsDone / PointsTotal are live per-point sweep progress;
	// cached jobs jump straight to total.
	PointsDone  int       `json:"points_done"`
	PointsTotal int       `json:"points_total"`
	Error       string    `json:"error,omitempty"`
	CreatedAt   time.Time `json:"created_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// job is the mutable record behind a Job snapshot.
type job struct {
	id    string
	key   string
	spec  scenario.Spec
	seed  uint64
	quick bool
	total int

	ctx    context.Context
	cancel context.CancelFunc
	done   atomic.Int64 // completed sweep points
	bc     *broadcast   // per-job stream buffer (see stream.go)

	mu       sync.Mutex
	state    State
	err      string
	notes    []string // table notes, set by execute before finishing
	created  time.Time
	started  time.Time
	finished chan struct{} // closed exactly once on any terminal state
	doneAt   time.Time
}

// snapshot renders the job under its lock.
func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	done := int(j.done.Load())
	if j.state == StateCached || j.state == StateDone {
		done = j.total
	}
	return Job{
		ID: j.id, SpecID: j.spec.ID, Key: j.key, Seed: j.seed, Quick: j.quick,
		State: j.state, PointsDone: done, PointsTotal: j.total,
		Error: j.err, CreatedAt: j.created, StartedAt: j.started, FinishedAt: j.doneAt,
	}
}

// finish moves the job to a terminal state once; later calls are
// ignored (e.g. a cancellation racing the executor's own completion).
// The job's context is released here, so every terminal path — fast
// cached answers, queue overflow, executor completion — frees it.
// The terminal stream event is published after the lock drops, closing
// the job's broadcast so subscribers drain and disconnect.
func (j *job) finish(s State, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state, j.err, j.doneAt = s, errMsg, time.Now()
	close(j.finished)
	j.cancel()
	notes := j.notes
	var elapsed int64
	if !j.started.IsZero() {
		elapsed = j.doneAt.Sub(j.started).Milliseconds()
	}
	j.mu.Unlock()
	j.bc.publish(StreamEvent{
		Type: EventDone, State: string(s),
		Notes: notes, Error: errMsg, ElapsedMS: elapsed,
	})
}

// Service is the sweep job queue.
type Service struct {
	st    *store.Store
	opts  Options
	suite harness.Suite // shared pool: EnsurePool'd once
	fab   *fabric.Coordinator

	mu       sync.Mutex
	seq      int
	jobs     map[string]*job
	order    []string        // submission order, for List
	inflight map[string]*job // store key -> the job computing it
	queue    chan *job
	closed   bool
	wg       sync.WaitGroup
}

// New starts a service draining the queue with opts.Executors
// goroutines. Close releases them.
func New(st *store.Store, opts Options) *Service {
	if opts.Executors <= 0 {
		opts.Executors = 2
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 256
	}
	if opts.MaxHistory <= 0 {
		opts.MaxHistory = 1024
	}
	s := &Service{
		st:   st,
		opts: opts,
		// One shared token pool across every executor: concurrent
		// sweeps divide the same Workers budget instead of multiplying.
		suite:    harness.Suite{Workers: opts.Workers, SimWorkers: opts.SimWorkers}.EnsurePool(),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		queue:    make(chan *job, opts.QueueCap),
		fab:      fabric.New(opts.Fabric),
	}
	for i := 0; i < opts.Executors; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.run(j)
			}
		}()
	}
	return s
}

// Close stops accepting submissions, cancels outstanding jobs, and
// waits for the executors to drain.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	// Cancel in sorted-ID order so shutdown behavior never depends on map
	// iteration order (stepvet: determinism).
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	close(s.queue)
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	// Closing the fabric resolves every in-flight Dispatch with
	// ErrNoWorkers, so canceled executors unblock promptly.
	s.fab.Close()
	s.wg.Wait()
	// Queued jobs the executors never reached die canceled.
	for _, j := range jobs {
		j.finish(StateCanceled, "service closed")
	}
}

// ErrQueueFull is returned by Submit when the backlog is at capacity.
var ErrQueueFull = errors.New("service: job queue is full")

// ErrClosed is returned by Submit once the service is shutting down.
var ErrClosed = errors.New("service: closed")

// Submit validates the spec, addresses it, and enqueues a job. A
// store hit is answered immediately with a cached job; otherwise the
// job starts queued and an executor picks it up.
func (s *Service) Submit(sp scenario.Spec, seed uint64, quick bool) (Job, error) {
	key, err := store.Key(sp, seed, quick) // validates via canonicalization
	if err != nil {
		return Job{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		key: key, spec: sp, seed: seed, quick: quick,
		total: sp.PointCount(quick),
		ctx:   ctx, cancel: cancel,
		bc:       newBroadcast(),
		created:  time.Now(),
		state:    StateQueued,
		finished: make(chan struct{}),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return Job{}, ErrClosed
	}
	s.seq++
	j.id = fmt.Sprintf("job-%d", s.seq)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pruneLocked()
	s.mu.Unlock()

	// Fast path: the result already exists — no queue round trip.
	if _, ok, err := s.st.Get(key); err == nil && ok {
		j.finish(StateCached, "")
		return j.snapshot(), nil
	}
	// Enqueue under the lock: Close closes the queue, so the closed
	// check and the send must be atomic.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.finish(StateCanceled, "service closed")
		return j.snapshot(), ErrClosed
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		j.finish(StateFailed, ErrQueueFull.Error())
		return j.snapshot(), ErrQueueFull
	}
	return j.snapshot(), nil
}

// run executes one dequeued job: serve from the store, or claim the
// key and sweep. When another job is already computing the same key,
// the job becomes a single-flight follower on its own goroutine — the
// executor is released immediately, so duplicate submissions of a slow
// spec cannot park executors and starve unrelated queued work.
func (s *Service) run(j *job) {
	if j.ctx.Err() != nil {
		j.finish(StateCanceled, context.Cause(j.ctx).Error())
		return
	}
	if j.terminal() {
		return // canceled while queued
	}
	if _, ok, err := s.st.Get(j.key); err == nil && ok {
		j.finish(StateCached, "")
		return
	}
	s.mu.Lock()
	runner := s.inflight[j.key]
	if runner == nil {
		s.inflight[j.key] = j
		s.mu.Unlock()
		s.execute(j)
		s.mu.Lock()
		delete(s.inflight, j.key)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	go s.follow(j, runner)
}

// follow waits for the runner computing this job's key, then answers
// from the store; if the runner died without a result (failed or
// canceled), the job re-enters the queue to claim the key itself.
func (s *Service) follow(j *job, runner *job) {
	select {
	case <-runner.finished:
	case <-j.ctx.Done():
		j.finish(StateCanceled, context.Cause(j.ctx).Error())
		return
	}
	if _, ok, err := s.st.Get(j.key); err == nil && ok {
		j.finish(StateCached, "")
		return
	}
	// No result: sweeps are deterministic, so a *failed* runner would
	// fail identically here — inherit its error instead of re-running
	// the whole failing sweep once per duplicate submission. A
	// canceled runner says nothing about the spec; re-claim the key.
	if rs := runner.snapshot(); rs.State == StateFailed {
		j.finish(StateFailed, rs.Error)
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.finish(StateCanceled, "service closed")
		return
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		j.finish(StateFailed, ErrQueueFull.Error())
	}
}

// terminal reports whether the job already finished.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// pruneLocked evicts the oldest terminal jobs past the MaxHistory
// bound; live jobs are never evicted. The caller holds s.mu (lock
// order is always s.mu before j.mu, so the terminal() check is safe).
func (s *Service) pruneLocked() {
	excess := len(s.order) - s.opts.MaxHistory
	if excess <= 0 {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// execute runs the sweep for a claimed key, streaming rows into the
// job's broadcast and the store's journal as they land. On success the
// journal commits into the cache entry; journaling failures (disk
// trouble mid-run) degrade to a plain Put of the finished artifacts,
// never to a failed sweep.
func (s *Service) execute(j *job) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state, j.started = StateRunning, time.Now()
	j.mu.Unlock()

	suite := s.suite
	suite.Seed = j.seed
	suite.Quick = j.quick
	suite.Ctx = j.ctx
	suite.OnPoint = func(ev harness.PointEvent) {
		if ev.Err == nil {
			j.bc.publish(StreamEvent{Type: EventProgress, PointsDone: int(j.done.Add(1))})
		}
	}

	jn, jerr := s.st.BeginJournal(j.key)
	if jerr != nil {
		jn = nil
	}
	var jmu sync.Mutex // guards jn against the concurrent record/commit/abort below
	record := func(ev StreamEvent) {
		jmu.Lock()
		defer jmu.Unlock()
		if jn == nil {
			return
		}
		if err := jn.Append(journalRecord(ev)); err != nil {
			jn.Abort()
			jn = nil
		}
	}
	abort := func() {
		jmu.Lock()
		defer jmu.Unlock()
		if jn != nil {
			jn.Abort()
			jn = nil
		}
	}

	sink := scenario.Sink{
		Start: func(st scenario.StreamStart) {
			ev := StreamEvent{
				Type: EventStart, JobID: j.id, SpecID: j.spec.ID, Key: j.key,
				Title: st.Title, Header: st.Header,
				RowsTotal: st.Rows, PointsTotal: st.Points,
			}
			record(ev)
			j.bc.publish(ev)
		},
		Row: func(p scenario.PointResult) {
			ev := StreamEvent{Type: EventRow, Index: p.Index, Cells: p.Cells, Coords: p.Coords}
			record(ev)
			j.bc.publish(ev)
		},
	}

	// Offer points to the worker fabric when workers are joined; with an
	// empty fleet Dispatch answers ErrNoWorkers immediately and the
	// point runs on this executor instead. The canonical spec ships in
	// every lease, so a work unit is self-contained.
	var x scenario.Exec
	if cj, err := j.spec.CanonicalJSON(); err == nil {
		work := fabric.Work{Key: j.key, Spec: cj, Seed: j.seed, Quick: j.quick}
		x.Remote = func(idx int) ([]byte, error) {
			raw, err := s.fab.Dispatch(j.ctx, work, idx)
			if errors.Is(err, fabric.ErrNoWorkers) {
				return nil, scenario.ErrLocalPoint
			}
			return raw, err
		}
	}

	start := time.Now()
	tb, err := scenario.RunStreamExec(j.spec, suite, sink, x)
	if err != nil {
		abort()
		if j.ctx.Err() != nil {
			j.finish(StateCanceled, context.Cause(j.ctx).Error())
		} else {
			j.finish(StateFailed, err.Error())
		}
		return
	}
	j.mu.Lock()
	j.notes = tb.Notes
	j.mu.Unlock()
	entry, err := store.NewEntry(j.spec, j.seed, j.quick, tb.String(), tb.CSV(), s.opts.GitDescribe, time.Since(start))
	if err != nil {
		abort()
		j.finish(StateFailed, err.Error())
		return
	}
	record(StreamEvent{Type: EventDone, Notes: tb.Notes})
	stored := false
	jmu.Lock()
	if jn != nil {
		if err := s.st.CommitJournal(jn, entry); err != nil {
			jn.Abort()
		} else {
			stored = true
		}
		jn = nil
	}
	jmu.Unlock()
	if !stored {
		if err := s.st.Put(entry); err != nil {
			j.finish(StateFailed, err.Error())
			return
		}
	}
	j.finish(StateDone, "")
}

// Get returns a snapshot of the job.
func (s *Service) Get(id string) (Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	return j.snapshot(), true
}

// List returns snapshots of every job in submission order.
func (s *Service) List() []Job {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// Finished exposes the job's completion channel (closed on any
// terminal state), so callers can wait with their own timeout.
func (s *Service) Finished(id string) (<-chan struct{}, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.finished, true
}

// Cancel stops a job: a queued job dies immediately, a running job's
// context cancels — the sweep stops dispatching points and in-flight
// simulations run to completion (see harness.Suite.Ctx). Cancel
// reports whether the job exists; canceling a finished job is a no-op.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.cancel()
	// A queued job has no executor to notice the context yet.
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		j.finish(StateCanceled, context.Canceled.Error())
	}
	return true
}

// ErrNotReady is returned by Table while the job has not produced a
// result yet.
var ErrNotReady = errors.New("service: job has no result yet")

// Table returns the stored result for a finished job.
func (s *Service) Table(id string) (*store.Entry, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown job %q", id)
	}
	j.mu.Lock()
	state, errMsg := j.state, j.err
	j.mu.Unlock()
	switch state {
	case StateDone, StateCached:
		e, ok, err := s.st.Get(j.key)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("service: result %s evicted from store", j.key)
		}
		return e, nil
	case StateFailed:
		return nil, fmt.Errorf("service: job %s failed: %s", id, errMsg)
	case StateCanceled:
		return nil, fmt.Errorf("service: job %s canceled", id)
	}
	return nil, ErrNotReady
}
