// Package hdlsim is the reference simulator for the Fig. 8 validation
// experiment. The paper validates its cycle-approximate STeP simulator
// against a Bluespec SystemVerilog model running in a cycle-accurate
// BlueSim simulation; this package plays that role with an independently
// coded model at the fabric's physical granularity: the SwiGLU dataflow is
// decomposed into 16×16 physical tiles (the hierarchical-tiling
// transformation of Appendix B.2), each compute unit processes one
// physical tile with an initiation interval of one, on-chip memory units
// move one tile per cycle class, and off-chip accesses go through the same
// bank/bus HBM model.
//
// The experiment then measures the correlation between this fine-grained
// model and the operator-level STeP simulator across tile-size sweeps,
// exactly as Fig. 8 does.
package hdlsim

import (
	"fmt"

	"step/internal/des"
	"step/internal/hbm"
)

// Phys is the physical compute-tile edge length (§4.5: 16×16 BF16 tiles).
const Phys = 16

// Config describes one Fig. 8 design point.
type Config struct {
	Batch, Hidden, Inter int
	BatchTile, InterTile int
	// OnchipBytesPerCycle is the per-memory-unit bandwidth (256 in §4.5).
	OnchipBytesPerCycle int64
	// HBM configures the off-chip model.
	HBM hbm.Config
	// ComputeBWPerMatmul is the FLOPs/cycle mapped to each matmul node;
	// it determines how many physical units the node occupies.
	ComputeBWPerMatmul int64
}

// Result is the fine-grained simulation outcome.
type Result struct {
	Cycles       des.Time
	TrafficBytes int64
}

// physMACCycles returns the cycle count for an m×k×n matmul mapped onto
// units physical 16×16 MAC units, II = 1 per physical tile, 16 cycles per
// 16×16×16 MAC.
func physMACCycles(m, k, n int, units int64) des.Time {
	tiles := int64(ceilDiv(m, Phys)) * int64(ceilDiv(k, Phys)) * int64(ceilDiv(n, Phys))
	cycles := tiles * Phys
	if units > 1 {
		cycles = (cycles + units - 1) / units
	}
	if cycles < 1 {
		cycles = 1
	}
	return des.Time(cycles)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Simulate runs the SwiGLU layer at physical-tile granularity and returns
// total cycles and off-chip traffic.
func Simulate(cfg Config) (Result, error) {
	if cfg.Batch%cfg.BatchTile != 0 || cfg.Inter%cfg.InterTile != 0 {
		return Result{}, fmt.Errorf("hdlsim: tiles must divide dimensions")
	}
	if cfg.OnchipBytesPerCycle <= 0 {
		cfg.OnchipBytesPerCycle = 256
	}
	if cfg.ComputeBWPerMatmul <= 0 {
		cfg.ComputeBWPerMatmul = int64(cfg.BatchTile) * 1024
	}
	// One physical unit sustains 2*16*16 FLOPs/cycle (one MAC column per
	// cycle); the allocated bandwidth maps to this many units.
	units := cfg.ComputeBWPerMatmul / (2 * Phys * Phys)
	if units < 1 {
		units = 1
	}

	sim := des.New()
	mem := hbm.New(cfg.HBM)
	nB := cfg.Batch / cfg.BatchTile
	nS := cfg.Inter / cfg.InterTile

	type work struct{ b, s int }
	xToMM := des.NewChan[work](sim, "x->mm", 2, 1)      // double-buffered x tiles
	hToMM2 := des.NewChan[work](sim, "h->mm2", 2, 1)    // h strips
	yToStore := des.NewChan[int](sim, "y->store", 2, 1) // finished y tiles

	onchip := func(bytes int64) des.Time {
		return des.Time((bytes + cfg.OnchipBytesPerCycle - 1) / cfg.OnchipBytesPerCycle)
	}
	xTileBytes := int64(cfg.BatchTile) * int64(cfg.Hidden) * 2
	w13StripBytes := int64(cfg.Hidden) * int64(cfg.InterTile) * 2
	w2StripBytes := int64(cfg.InterTile) * int64(cfg.Hidden) * 2
	hStripBytes := int64(cfg.BatchTile) * int64(cfg.InterTile) * 2
	yTileBytes := int64(cfg.BatchTile) * int64(cfg.Hidden) * 2

	// Stage 1: load x tiles.
	sim.Spawn("xload", func(p *des.Process) error {
		port := mem.NewPort()
		for b := 0; b < nB; b++ {
			port.Read(p, xTileBytes)
			p.Advance(onchip(xTileBytes))
			for s := 0; s < nS; s++ {
				xToMM.Send(p, work{b: b, s: s})
			}
		}
		xToMM.Close(p)
		return nil
	})

	// Stage 2: W1/W3 strip loads + the two gate matmuls + SiLU + multiply,
	// per (x tile, strip).
	sim.Spawn("gate", func(p *des.Process) error {
		port := mem.NewPort()
		defer hToMM2.Close(p)
		for {
			w, ok := xToMM.Recv(p)
			if !ok {
				return nil
			}
			port.Read(p, w13StripBytes) // W1 strip
			port.Read(p, w13StripBytes) // W3 strip
			// Two matmuls on separate unit groups run back to back per
			// strip; physical MACs dominate.
			p.Advance(physMACCycles(cfg.BatchTile, cfg.Hidden, cfg.InterTile, units))
			p.Advance(physMACCycles(cfg.BatchTile, cfg.Hidden, cfg.InterTile, units))
			// SiLU + elementwise gate: one pass over the h strip through
			// the vector units via on-chip memory.
			p.Advance(onchip(hStripBytes))
			hToMM2.Send(p, w)
		}
	})

	// Stage 3: W2 strip load + accumulate matmul; emits a y tile after the
	// final strip of each batch tile.
	sim.Spawn("reduce", func(p *des.Process) error {
		port := mem.NewPort()
		defer yToStore.Close(p)
		for {
			w, ok := hToMM2.Recv(p)
			if !ok {
				return nil
			}
			port.Read(p, w2StripBytes)
			p.Advance(physMACCycles(cfg.BatchTile, cfg.InterTile, cfg.Hidden, units))
			if w.s == nS-1 {
				yToStore.Send(p, w.b)
			}
		}
	})

	// Stage 4: store y tiles off-chip.
	sim.Spawn("ystore", func(p *des.Process) error {
		port := mem.NewPort()
		for {
			_, ok := yToStore.Recv(p)
			if !ok {
				return nil
			}
			p.Advance(onchip(yTileBytes))
			port.Write(p, yTileBytes)
		}
	})

	cycles, err := sim.Run()
	if err != nil {
		return Result{}, fmt.Errorf("hdlsim: %w", err)
	}
	return Result{Cycles: cycles, TrafficBytes: mem.TrafficBytes()}, nil
}
