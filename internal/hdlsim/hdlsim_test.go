package hdlsim

import (
	"math"
	"testing"

	"step/internal/element"
	"step/internal/graph"
	"step/internal/hbm"
	"step/internal/onchip"
	"step/internal/ops"
	"step/internal/shape"
	"step/internal/tile"
	"step/internal/workloads"
)

func TestSimulateBasic(t *testing.T) {
	cfg := Config{
		Batch: 64, Hidden: 256, Inter: 512,
		BatchTile: 16, InterTile: 64,
		OnchipBytesPerCycle: 256,
		HBM:                 hbm.DefaultConfig(),
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	// Traffic: x + nB×(w1+w3+w2) + y.
	want := workloads.SwiGLUTrafficBytes(workloads.SwiGLUConfig{
		Batch: 64, Hidden: 256, Inter: 512, BatchTile: 16, InterTile: 64,
	})
	if res.TrafficBytes != want {
		t.Fatalf("traffic = %d, want %d", res.TrafficBytes, want)
	}
}

func TestSimulateRejectsBadTiles(t *testing.T) {
	_, err := Simulate(Config{Batch: 10, Hidden: 16, Inter: 16, BatchTile: 3, InterTile: 16, HBM: hbm.DefaultConfig()})
	if err == nil {
		t.Fatal("expected divisibility error")
	}
}

// TestFigure8Correlation is the validation experiment: the STeP
// operator-level simulator's cycle counts must correlate strongly with the
// fine-grained physical-tile model across the Fig. 8 tile sweep.
func TestFigure8Correlation(t *testing.T) {
	var stepCycles, hdlCycles []float64
	for _, bt := range []int{16, 32, 64} {
		for _, it := range []int{16, 32, 64, 128, 256} {
			scfg := workloads.SwiGLUConfig{
				Batch: 64, Hidden: 256, Inter: 512,
				BatchTile: bt, InterTile: it, Seed: 1,
			}
			sw, err := workloads.BuildSwiGLU(scfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg := graph.DefaultConfig()
			cfg.Onchip = onchip.Config{BandwidthBytesPerCycle: 256}
			res, err := sw.Graph.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			href, err := Simulate(Config{
				Batch: 64, Hidden: 256, Inter: 512,
				BatchTile: bt, InterTile: it,
				OnchipBytesPerCycle: 256,
				HBM:                 hbm.DefaultConfig(),
			})
			if err != nil {
				t.Fatal(err)
			}
			stepCycles = append(stepCycles, float64(res.Cycles))
			hdlCycles = append(hdlCycles, float64(href.Cycles))
			// Traffic must agree exactly: both models move the same bytes.
			if res.OffchipTrafficBytes != href.TrafficBytes {
				t.Errorf("(%d,%d): traffic %d vs %d", bt, it, res.OffchipTrafficBytes, href.TrafficBytes)
			}
		}
	}
	r := pearson(stepCycles, hdlCycles)
	t.Logf("Pearson correlation over %d design points: %.4f", len(stepCycles), r)
	if r < 0.9 {
		t.Fatalf("correlation %.4f below 0.9 (paper reports 0.99)", r)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var num, dx, dy float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		dx += (x[i] - mx) * (x[i] - mx)
		dy += (y[i] - my) * (y[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

func TestTransformedMatmulMatchesDirect(t *testing.T) {
	// Fig. 18: the hierarchically tiled graph computes the same Aᵀ×B as a
	// single large-tile Map.
	const (
		tLen = 3
		k    = Phys
		m    = 2 * Phys
		n    = 4 * Phys
	)
	g := graph.New()
	var aT, bT []*tile.Tile
	var aE, bE []element.Element
	for i := 0; i < tLen; i++ {
		a := tile.Random(k, m, uint64(i)+1)
		b := tile.Random(k, n, uint64(i)+100)
		aT, bT = append(aT, a), append(bT, b)
		aE = append(aE, element.DataOf(element.TileVal{T: a}))
		bE = append(bE, element.DataOf(element.TileVal{T: b}))
	}
	aE = append(aE, element.DoneElem)
	bE = append(bE, element.DoneElem)
	aS := ops.Source(g, "a", shape.OfInts(tLen), graph.StaticTile(k, m), aE)
	bS := ops.Source(g, "b", shape.OfInts(tLen), graph.StaticTile(k, n), bE)
	out := TransformedMatmulATB(g, aS, bS, Phys)
	cap := ops.Capture(g, "cap", out)
	if _, err := g.Run(graph.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	var got []*tile.Tile
	for _, e := range cap.Elements() {
		if e.IsData() {
			got = append(got, e.Value.(element.TileVal).T)
		}
	}
	if len(got) != tLen {
		t.Fatalf("%d outputs", len(got))
	}
	for i := range got {
		want := tile.MatMul(aT[i].Transpose(), bT[i])
		if !tile.Equal(got[i], want, 1e-3) {
			t.Fatalf("tensor %d mismatch", i)
		}
	}
}
