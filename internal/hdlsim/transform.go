package hdlsim

import (
	"fmt"

	"step/internal/element"
	"step/internal/graph"
	"step/internal/ops"
	"step/internal/shape"
	"step/internal/tile"
)

// TransformedMatmulATB rewrites a STeP-level C = Aᵀ×B map node over large
// tiles into physical-granularity tiles (the hierarchical-tiling graph
// transformation of Fig. 18): both operands are split into phys-wide
// column chunks, bufferized on-chip, re-streamed in the (i, j) output
// order via affine reads, multiplied per physical tile, and re-tiled into
// the original output tile size.
//
// a is a [T]-shaped stream of [K, M] tiles and b a [T]-shaped stream of
// [K, N] tiles, with K == phys (deeper reductions pre-split K upstream).
// The result is a [T]-shaped stream of [M, N] tiles.
func TransformedMatmulATB(g *graph.Graph, a, b *graph.Stream, phys int) *graph.Stream {
	at, okA := a.DType.(graph.TileType)
	bt, okB := b.DType.(graph.TileType)
	if !okA || !okB {
		g.Errf("transform: operands must be tile streams")
		return a
	}
	kA, mDim, okA2 := at.StaticDims()
	kB, nDim, okB2 := bt.StaticDims()
	if !okA2 || !okB2 || kA != kB || kA != phys {
		g.Errf("transform: need static [phys, *] tiles, got %s and %s", at, bt)
		return a
	}
	if mDim%phys != 0 || nDim%phys != 0 {
		g.Errf("transform: tile dims %dx%d not divisible by phys %d", mDim, nDim, phys)
		return a
	}
	mC, nC := mDim/phys, nDim/phys
	tLen, ok := a.Shape.Outer().IsStatic()
	if !ok || a.Shape.Rank() != 1 {
		g.Errf("transform: operand stream must be a static [T] shape, got %s", a.Shape)
		return a
	}

	// Split operands into phys-column chunks; FlatMap emits a flat rank-0
	// chunk stream, which Reshape regroups per tensor so the bufferize
	// boundary is each tensor's chunk list.
	aChunks := ops.FlatMap(g, "t.asplit", a, 0, ops.SplitColsFn(phys),
		[]shape.Dim{shape.Static(mC)})
	aChunks.OverrideShape(shape.OfInts(tLen * mC))
	bChunks := ops.FlatMap(g, "t.bsplit", b, 0, ops.SplitColsFn(phys),
		[]shape.Dim{shape.Static(nC)})
	bChunks.OverrideShape(shape.OfInts(tLen * nC))
	aGrp, aPad := ops.Reshape(g, "t.agrp", aChunks, 0, mC, nil)
	ops.Sink(g, "t.agrp.padsink", aPad)
	bGrp, bPad := ops.Reshape(g, "t.bgrp", bChunks, 0, nC, nil)
	ops.Sink(g, "t.bgrp.padsink", bPad)
	aBufs := ops.Bufferize(g, "t.abuf", aGrp, 1)
	bBufs := ops.Bufferize(g, "t.bbuf", bGrp, 1)

	// Re-stream in output (i, j) order: A chunk i repeats across j
	// (stride (1, 0)); B chunk j cycles within each i (stride (0, 1)).
	aRef := ops.CountSource(g, "t.aref", tLen)
	bRef := ops.CountSource(g, "t.bref", tLen)
	aStride, abShape := [2]int{1, 0}, [2]int{mC, nC}
	bStride := [2]int{0, 1}
	aSeq := ops.Streamify(g, "t.astream", aBufs, aRef, &aStride, &abShape)
	bSeq := ops.Streamify(g, "t.bstream", bBufs, bRef, &bStride, &abShape)

	// Physical matmuls and re-tiling.
	prod := ops.Map2(g, "t.mm", aSeq, bSeq, matmulATBFn(), ops.ComputeOpts{ComputeBW: 2 * Phys * Phys})
	colFn := ops.RetileColFn()
	colFn.OutType = func(graph.DType) graph.DType { return graph.StaticTile(phys, nDim) }
	rowsOut := ops.Accum(g, "t.retilecol", prod, 1, colFn, ops.ComputeOpts{})
	rowFn := ops.RetileRowFn()
	rowFn.OutType = func(graph.DType) graph.DType { return graph.StaticTile(mDim, nDim) }
	return ops.Accum(g, "t.retilerow", rowsOut, 1, rowFn, ops.ComputeOpts{})
}

// matmulATBFn multiplies physical chunk pairs: (Achunk, Bchunk) → Aᵀ×B.
func matmulATBFn() ops.MapFn {
	return ops.MapFn{
		Name: "matmul-atb",
		Apply: func(v element.Value) (element.Value, int64, error) {
			tp, ok := v.(element.Tuple)
			if !ok {
				return nil, 0, fmt.Errorf("matmul-atb: expected tuple, got %T", v)
			}
			av, okA := tp.A.(element.TileVal)
			bv, okB := tp.B.(element.TileVal)
			if !okA || !okB {
				return nil, 0, fmt.Errorf("matmul-atb: expected tile operands")
			}
			at := av.T.Transpose()
			return element.TileVal{T: tile.MatMul(at, bv.T)}, tile.MatMulFLOPs(at, bv.T), nil
		},
		OutType: func(in graph.DType) graph.DType {
			tt, ok := in.(graph.TupleType)
			if !ok {
				return in
			}
			a, okA := tt.A.(graph.TileType)
			b, okB := tt.B.(graph.TileType)
			if !okA || !okB {
				return in
			}
			return graph.TileType{Rows: a.Cols, Cols: b.Cols}
		},
	}
}
