#!/usr/bin/env bash
# Distributed-sweep smoke test — the coordinator/worker fabric end to
# end across real processes:
#   1. `stepctl serve` with short lease/worker TTLs is the coordinator,
#   2. `stepctl worker -join` processes pull sweep points over HTTP,
#   3. the first worker is kill -9'd mid-sweep and a second one joins;
#      the lease janitor re-dispatches (or fails over locally) and the
#      sweep must still finish,
#   4. the watched table is diffed against the committed golden
#      artifact — byte-identical no matter which worker (or the
#      coordinator itself) ran each point.
# The deterministic kill/re-dispatch/stale-commit sequence is pinned by
# unit tests (internal/fabric, internal/service); this script proves
# the shipped binaries wire it together. Run from anywhere; `make
# fabric-smoke` runs it in CI.
#
# Usage: examples/fabric_smoke.sh [spec-id]   (default: fig9)
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC="${1:-fig9}"
ADDR="${STEP_FABRIC_ADDR:-127.0.0.1:8376}"
BASE="http://$ADDR"
GOLDEN="internal/scenario/testdata/golden/$SPEC.txt"
WORK="$(mktemp -d)"

[ -f "$GOLDEN" ] || { echo "no golden artifact $GOLDEN" >&2; exit 1; }

go build -o "$WORK/stepctl" ./cmd/stepctl

"$WORK/stepctl" serve -addr "$ADDR" -cache-dir "$WORK/cache" \
  -lease-ttl 1s -worker-ttl 3s 2>"$WORK/serve.log" &
SERVER=$!
WORKER1=
WORKER2=
cleanup() {
  for pid in "$WORKER1" "$WORKER2" "$SERVER"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
for _ in $(seq 1 50); do
  curl -sf "$BASE/specs" >/dev/null 2>&1 && break
  sleep 0.2
done

echo "== join worker 1 and wait for it to appear in /work/workers =="
"$WORK/stepctl" worker -join "$BASE" -name smoke-w1 -workers 1 2>"$WORK/w1.log" &
WORKER1=$!
for _ in $(seq 1 50); do
  curl -sf "$BASE/work/workers" | grep -q smoke-w1 && break
  sleep 0.2
done
curl -sf "$BASE/work/workers" | grep -q smoke-w1 || { echo "worker 1 never joined" >&2; exit 1; }

echo "== sweep across the fabric; kill worker 1 mid-sweep =="
curl -sf -X POST "$BASE/sweeps?name=$SPEC&seed=7&quick=1" >"$WORK/job.json"
JOB=$(sed -n 's/.*"id": "\(job-[0-9]*\)".*/\1/p' "$WORK/job.json")
"$WORK/stepctl" watch "$ADDR" "$JOB" >"$WORK/watch.txt" 2>"$WORK/watch.log" &
WATCH=$!
# The moment the first row lands, worker 1 dies without ceremony; its
# in-flight lease must lapse and re-dispatch, not lose the point.
for _ in $(seq 1 100); do
  grep -q '^row ' "$WORK/watch.log" 2>/dev/null && break
  sleep 0.1
done
kill -9 "$WORKER1" 2>/dev/null || true
wait "$WORKER1" 2>/dev/null || true
WORKER1=

echo "== join worker 2 to pick up the remainder =="
"$WORK/stepctl" worker -join "$BASE" -name smoke-w2 -workers 1 2>"$WORK/w2.log" &
WORKER2=$!

wait "$WATCH" || { echo "watch failed:"; cat "$WORK/watch.log"; exit 1; } >&2
diff "$GOLDEN" <(head -c -1 "$WORK/watch.txt")

echo "== served table matches the golden artifact too =="
curl -sf "$BASE/sweeps/$JOB/table" >"$WORK/table.txt"
diff "$GOLDEN" "$WORK/table.txt"

echo "fabric smoke OK: $SPEC byte-identical with a worker killed mid-sweep"
