// Program IR: programs as values, shipped as data. A STeP program
// authored as JSON (no Go code) is loaded, compiled into an immutable
// step.Program, inspected, and run repeatedly — each run instantiates
// fresh engine state, and seeded random tiles re-materialize per run
// seed, so one compiled program yields an independent instance per
// seed.
//
// The same file runs through every other entry point unchanged:
//
//	stepctl program compile|dot|run -ir examples/programs/pipeline.json
//	stepctl sweep -spec examples/specs/program_pipeline.json
//	curl -X POST --data-binary @examples/programs/pipeline.json \
//	     'http://127.0.0.1:8372/programs?wait=60s'
//
// Run with: go run ./examples/program_ir
package main

import (
	"fmt"
	"log"

	"step"
)

func main() {
	ir, err := step.LoadProgramIR("examples/programs/pipeline.json")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := step.CompileProgramIR(ir)
	if err != nil {
		log.Fatal(err)
	}
	hash, err := prog.Hash()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d nodes, %d streams, ir %s\n",
		prog.Name(), prog.NodeCount(), prog.StreamCount(), hash[:12])
	fmt.Printf("symbolic on-chip requirement (§4.2): %s bytes\n", prog.OnchipBytesExpr())

	// Repeated runs of one compiled program are legal and independent.
	for _, seed := range []uint64{7, 8} {
		sess, err := prog.Run(step.WithSeed(seed), step.WithSimWorkers(2))
		if err != nil {
			log.Fatal(err)
		}
		out, _ := sess.Captured("out")
		fmt.Printf("seed %d: %d cycles, %d FLOPs, %d captured elements\n",
			seed, sess.Result.Cycles, sess.Result.TotalFLOPs, len(out))
	}
}
