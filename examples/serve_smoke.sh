#!/usr/bin/env bash
# Serving-sweeps smoke test — and a curl tour of the sweep service.
#
# Starts `stepctl serve` against a throwaway cache, submits a canned
# spec at the golden configuration (quick mode, seed 7), diffs the
# served table against the committed golden artifact, and checks that
# a repeated POST is answered from the content-addressed store without
# re-simulation. Run from anywhere; `make serve-smoke` runs it in CI.
#
# Usage: examples/serve_smoke.sh [spec-id]   (default: gqa-ratio)
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC="${1:-gqa-ratio}"
ADDR="${STEP_SERVE_ADDR:-127.0.0.1:8374}"
BASE="http://$ADDR"
GOLDEN="internal/scenario/testdata/golden/$SPEC.txt"
WORK="$(mktemp -d)"

[ -f "$GOLDEN" ] || { echo "no golden artifact $GOLDEN" >&2; exit 1; }

go build -o "$WORK/stepctl" ./cmd/stepctl
"$WORK/stepctl" serve -addr "$ADDR" -cache-dir "$WORK/cache" &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true; wait "$SERVER" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Wait for the listener.
for _ in $(seq 1 50); do
  curl -sf "$BASE/specs" >/dev/null 2>&1 && break
  sleep 0.2
done

echo "== canned registry =="
curl -sf "$BASE/specs" | grep '"id"'

echo "== POST /sweeps?name=$SPEC (quick, seed 7; wait for completion) =="
curl -sf -X POST "$BASE/sweeps?name=$SPEC&seed=7&quick=1&wait=5m" | tee "$WORK/job.json"
JOB=$(sed -n 's/.*"id": "\(job-[0-9]*\)".*/\1/p' "$WORK/job.json")
grep -q '"state": "done"' "$WORK/job.json" || { echo "first run did not finish done" >&2; exit 1; }

echo "== GET /sweeps/$JOB/table: diff against $GOLDEN =="
curl -sf "$BASE/sweeps/$JOB/table" >"$WORK/table.txt"
diff "$GOLDEN" "$WORK/table.txt"

echo "== repeated POST must be served from the cache =="
curl -sf -X POST "$BASE/sweeps?name=$SPEC&seed=7&quick=1&wait=5m" | tee "$WORK/job2.json"
grep -q '"state": "cached"' "$WORK/job2.json" || { echo "repeat was not served from the cache" >&2; exit 1; }
JOB2=$(sed -n 's/.*"id": "\(job-[0-9]*\)".*/\1/p' "$WORK/job2.json")
curl -sf "$BASE/sweeps/$JOB2/table" >"$WORK/table2.txt"
diff "$WORK/table.txt" "$WORK/table2.txt"

echo "== CSV rendering =="
curl -sf "$BASE/sweeps/$JOB2/table?format=csv" | head -3

echo "== POST /programs: user-authored program IR round trip =="
curl -sf -X POST --data-binary @examples/programs/pipeline.json \
  "$BASE/programs?seed=7&wait=5m" | tee "$WORK/prog.json"
grep -q '"state": "done"' "$WORK/prog.json" || { echo "program run did not finish done" >&2; exit 1; }
PJOB=$(sed -n 's/.*"id": "\(job-[0-9]*\)".*/\1/p' "$WORK/prog.json")
curl -sf "$BASE/sweeps/$PJOB/table" >"$WORK/prog_table.txt"
grep -q 'program pipeline' "$WORK/prog_table.txt" || { echo "program table missing note" >&2; exit 1; }

echo "== repeated POST /programs must be served from the cache =="
curl -sf -X POST --data-binary @examples/programs/pipeline.json \
  "$BASE/programs?seed=7&wait=5m" | tee "$WORK/prog2.json"
grep -q '"state": "cached"' "$WORK/prog2.json" || { echo "program repeat was not cached" >&2; exit 1; }
PJOB2=$(sed -n 's/.*"id": "\(job-[0-9]*\)".*/\1/p' "$WORK/prog2.json")
curl -sf "$BASE/sweeps/$PJOB2/table" >"$WORK/prog_table2.txt"
diff "$WORK/prog_table.txt" "$WORK/prog_table2.txt"

echo "serve smoke OK: $SPEC served byte-identical to $GOLDEN, repeat answered from cache, program IR served and cached"
