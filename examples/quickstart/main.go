// Quickstart: the paper's simplified two-expert MoE walkthrough (§3.3,
// Figs. 6 and 7, Listing 1). Rows of a [10, 64] input are routed
// dynamically to one of two experts (a single matmul each), packed into
// [4, 64] tiles, multiplied against column-tiled weights loaded from
// off-chip memory, unpacked, and reassembled in input order.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"step"
)

func main() {
	cfg := step.DefaultSimpleMoEConfig()
	moe, err := step.BuildSimpleMoE(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Inspect the program: every edge carries a symbolic stream shape.
	fmt.Println("Routing (row -> expert):", cfg.Routing)

	// The builder compiled the graph into an immutable Program; running
	// it instantiates fresh engine state, so repeated runs are legal.
	sess, err := moe.Program.Run(step.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	res := sess.Result

	rows, err := moe.OutputRows()
	if err != nil {
		log.Fatal(err)
	}
	ref := moe.Reference()
	maxErr := float32(0)
	for i, r := range rows {
		for c := 0; c < cfg.Out; c++ {
			d := r.At(0, c) - ref.At(i, c)
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}

	fmt.Printf("rows produced:        %d\n", len(rows))
	fmt.Printf("max abs error:        %g (vs direct tensor computation)\n", maxErr)
	fmt.Printf("simulated cycles:     %d\n", res.Cycles)
	fmt.Printf("off-chip traffic:     %d bytes\n", res.OffchipTrafficBytes)
	fmt.Printf("total FLOPs:          %d (includes padding overhead)\n", res.TotalFLOPs)
	fmt.Printf("operational intensity: %.2f FLOPs/byte\n", res.OperationalIntensity())
}
