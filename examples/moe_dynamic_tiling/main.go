// Dynamic tiling on a Mixture-of-Experts layer (§5.2, Fig. 9): static
// tiling pads each expert's tokens into fixed-size tiles, trading on-chip
// memory against weight-reload traffic; dynamic tiling packs exactly the
// tokens each expert received into one dynamically-sized tile, breaking
// the static Pareto frontier.
//
// Run with: go run ./examples/moe_dynamic_tiling
package main

import (
	"fmt"
	"log"

	"step"
)

func main() {
	model := step.Qwen3Config().Scaled(8)
	const batch = 64
	routing, err := step.SampleExpertRouting(batch, model.NumExperts, model.TopK, step.SkewHeavy, 1)
	if err != nil {
		log.Fatal(err)
	}
	counts := routing.Counts()
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	fmt.Printf("model %s: %d experts, top-%d, batch %d; busiest expert gets %d tokens\n\n",
		model.Name, model.NumExperts, model.TopK, batch, maxC)

	fmt.Printf("%-10s %10s %14s %14s\n", "schedule", "cycles", "on-chip bytes", "traffic bytes")
	run := func(label string, tileSize int, dynamic bool) {
		layer, err := step.BuildMoELayer(step.MoELayerConfig{
			Model: model, Batch: batch,
			TileSize: tileSize, Dynamic: dynamic,
			Routing: routing, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := layer.Graph.Run(step.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		onchip, err := layer.OnchipBytes()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10d %14d %14d\n", label, res.Cycles, onchip, res.OffchipTrafficBytes)
	}
	for _, ts := range []int{8, 16, 32, 64} {
		run(fmt.Sprintf("tile=%d", ts), ts, false)
	}
	run("dynamic", 0, true)
	fmt.Println("\nDynamic tiling avoids both the small-tile weight reloads and the")
	fmt.Println("large-tile padding: it should match or beat every static point on")
	fmt.Println("at least one axis without losing the other (Pareto improvement).")
}
