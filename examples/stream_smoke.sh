#!/usr/bin/env bash
# Streaming smoke test — the per-point result pipeline end to end.
#
# Runs the same canned spec three ways and requires byte-identical
# tables from all of them:
#   1. `stepctl sweep` (batch) vs `stepctl sweep -follow` (rows stream
#      to stderr as points land; stdout must not change),
#   2. `stepctl watch` tailing a live `stepctl serve` job over the
#      GET /sweeps/{id}/stream NDJSON feed,
#   3. `stepctl watch` of a cache-hit job, replayed from the stored
#      rows.ndjson journal instead of a live sweep.
# Run from anywhere; `make stream-smoke` runs it in CI.
#
# Usage: examples/stream_smoke.sh [spec-id]   (default: gqa-ratio)
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC="${1:-gqa-ratio}"
ADDR="${STEP_STREAM_ADDR:-127.0.0.1:8375}"
BASE="http://$ADDR"
GOLDEN="internal/scenario/testdata/golden/$SPEC.txt"
WORK="$(mktemp -d)"

[ -f "$GOLDEN" ] || { echo "no golden artifact $GOLDEN" >&2; exit 1; }

go build -o "$WORK/stepctl" ./cmd/stepctl

echo "== sweep -follow: progressive rows, unchanged stdout =="
"$WORK/stepctl" sweep -name "$SPEC" -quick >"$WORK/plain.txt"
"$WORK/stepctl" sweep -name "$SPEC" -quick -follow >"$WORK/follow.txt" 2>"$WORK/follow.log"
diff "$WORK/plain.txt" "$WORK/follow.txt"
grep -q '^row ' "$WORK/follow.log" || { echo "-follow printed no rows" >&2; exit 1; }

"$WORK/stepctl" serve -addr "$ADDR" -cache-dir "$WORK/cache" &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true; wait "$SERVER" 2>/dev/null || true; rm -rf "$WORK"' EXIT
for _ in $(seq 1 50); do
  curl -sf "$BASE/specs" >/dev/null 2>&1 && break
  sleep 0.2
done

echo "== watch a live job: tail the NDJSON stream as it lands =="
curl -sf -X POST "$BASE/sweeps?name=$SPEC&seed=7&quick=1" >"$WORK/job.json"
JOB=$(sed -n 's/.*"id": "\(job-[0-9]*\)".*/\1/p' "$WORK/job.json")
"$WORK/stepctl" watch "$ADDR" "$JOB" >"$WORK/watch.txt" 2>"$WORK/watch.log"
diff "$WORK/plain.txt" "$WORK/watch.txt"
grep -q '^row ' "$WORK/watch.log" || { echo "watch printed no rows" >&2; exit 1; }
diff "$GOLDEN" <(head -c -1 "$WORK/watch.txt")

echo "== watch a cached job: replay from the stored journal =="
curl -sf -X POST "$BASE/sweeps?name=$SPEC&seed=7&quick=1&wait=5m" >"$WORK/job2.json"
grep -q '"state": "cached"' "$WORK/job2.json" || { echo "repeat was not served from the cache" >&2; exit 1; }
JOB2=$(sed -n 's/.*"id": "\(job-[0-9]*\)".*/\1/p' "$WORK/job2.json")
"$WORK/stepctl" watch "$ADDR" "$JOB2" >"$WORK/watch2.txt" 2>/dev/null
diff "$WORK/watch.txt" "$WORK/watch2.txt"

echo "== raw stream shape: start first, done last =="
curl -sf "$BASE/sweeps/$JOB2/stream" >"$WORK/stream.ndjson"
head -1 "$WORK/stream.ndjson" | grep -q '"type":"start"' || { echo "stream does not open with a start event" >&2; exit 1; }
tail -1 "$WORK/stream.ndjson" | grep -q '"type":"done"' || { echo "stream does not end with a done event" >&2; exit 1; }

echo "stream smoke OK: $SPEC byte-identical across batch, -follow, live watch, and journal replay"
