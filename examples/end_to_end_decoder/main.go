// End-to-end decoder layers (§5.5, Fig. 17): Qwen3-30B-A3B decoder layers
// (QKV + attention + MoE) under a static schedule versus the combined
// dynamic optimizations — dynamic tiling, dynamic parallelization, and
// configuration time-multiplexing of the 128-expert pool across 16
// regions.
//
// Run with: go run ./examples/end_to_end_decoder
package main

import (
	"fmt"
	"log"

	"step"
)

func main() {
	model := step.Qwen3Config().Scaled(8)
	const batch = 64
	kv := step.SampleKVLengths(batch, 2048, step.VarMed, 11)

	run := func(label string, cfg step.DecoderConfig) step.DecoderResult {
		cfg.Model = model
		cfg.Batch = batch
		cfg.KVLens = kv
		cfg.SampleLayers = 2
		cfg.Skew = step.SkewHeavy
		cfg.Seed = 11
		res, err := step.RunDecoder(cfg, step.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12d %14d %16d\n",
			label, res.CyclesTotal, res.OnchipBytes, res.AllocatedComputeBW)
		return res
	}

	fmt.Printf("%s, %d layers, batch %d\n\n", model.Name, model.Layers, batch)
	fmt.Printf("%-28s %12s %14s %16s\n", "schedule", "cycles", "on-chip bytes", "alloc FLOPs/cyc")
	static := run("static (tile=16, interleaved)", step.DecoderConfig{
		MoETile: 16, AttnStrategy: step.StaticInterleaved,
	})
	dynamic := run("dynamic (+timeshare x16)", step.DecoderConfig{
		MoEDynamic: true, MoERegions: 16, AttnStrategy: step.DynamicParallel,
	})

	fmt.Printf("\nspeedup:          %.2fx\n", float64(static.CyclesTotal)/float64(dynamic.CyclesTotal))
	fmt.Printf("on-chip memory:   %.0f%% less\n", 100*(1-float64(dynamic.OnchipBytes)/float64(static.OnchipBytes)))
	fmt.Printf("allocated compute: %.0f%% less\n", 100*(1-float64(dynamic.AllocatedComputeBW)/float64(static.AllocatedComputeBW)))
}
