// Command scenario_sweep shows the declarative scenario subsystem from
// the library side: a sweep the paper's registry cannot express —
// grouped-query attention ratios against a heterogeneous serving mix —
// built as a spec value, compiled onto the workload entry points, and
// fanned out on the parallel harness. The same spec round-trips through
// JSON for `stepctl sweep -spec` (see examples/specs/).
package main

import (
	"fmt"
	"os"

	"step"
)

func main() {
	spec := step.ScenarioSpec{
		ID:    "gqa-mixed",
		Title: "GQA ratio under a mixed short/long serving batch",
		Kind:  "attention",
		Models: []step.ScenarioModelSpec{
			{Base: "qwen"},
		},
		Scale: 8,
		Groups: []step.RequestGroup{
			{Count: 24, KVLen: 512},
			{Count: 8, KVLen: 4096},
		},
		KVHeads:     []int{1, 4, 32},
		Strategies:  []string{"static-coarse", "dynamic"},
		CoarseBlock: 8,
		Compare:     true,
		// Run the sweep across both harness worker counts and both DES
		// engines, requiring byte-identical tables.
		WorkersAxis:    []int{1, 8},
		SimWorkersAxis: []int{1, 8},
	}
	tb, err := step.RunScenario(spec, step.SweepSuite{Seed: 7})
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario_sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(tb.String())
}
