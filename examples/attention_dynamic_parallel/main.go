// Dynamic parallelization of decode attention (§5.4, Figs. 14–16): decode
// requests with varying KV-cache lengths are dispatched across four
// spatially parallel regions. Static coarse blocks and round-robin
// interleaving suffer load imbalance; the dynamic schedule routes each
// request to whichever region frees up first, via a selector feedback loop
// built from Partition, EagerMerge, and a relay (Fig. 16).
//
// Run with: go run ./examples/attention_dynamic_parallel
package main

import (
	"fmt"
	"log"

	"step"
)

func main() {
	model := step.Qwen3Config().Scaled(8)
	const batch = 64

	fmt.Printf("decode attention, batch %d, 4 parallel regions\n\n", batch)
	fmt.Printf("%-12s %18s %18s %14s\n", "KV variance", "interleaved cyc", "coarse cyc", "dynamic cyc")
	for _, class := range []step.VarianceClass{step.VarLow, step.VarMed, step.VarHigh} {
		kv := step.SampleKVLengths(batch, 2048, class, 7)
		cycles := func(strategy step.ParallelStrategy, block int) uint64 {
			a, err := step.BuildAttention(step.AttentionConfig{
				Model:       model,
				KVLens:      kv,
				Strategy:    strategy,
				Regions:     4,
				KVChunk:     64,
				CoarseBlock: block,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := a.Graph.Run(step.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			if a.CompletedRequests() != batch {
				log.Fatalf("%v completed %d of %d", strategy, a.CompletedRequests(), batch)
			}
			return uint64(res.Cycles)
		}
		ic := cycles(step.StaticInterleaved, 0)
		cc := cycles(step.StaticCoarse, 16)
		dc := cycles(step.DynamicParallel, 0)
		fmt.Printf("%-12s %18d %18d %14d   (dyn speedup %.2fx / %.2fx)\n",
			class, ic, cc, dc, float64(ic)/float64(dc), float64(cc)/float64(dc))
	}
	fmt.Println("\nThe dynamic schedule's advantage grows with KV-length variance,")
	fmt.Println("because long requests block statically assigned regions (Fig. 14).")
}
