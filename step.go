// Package step is a Go implementation of Streaming Tensor Programs
// (STeP), the streaming abstraction for dynamic tensor workloads on
// spatial dataflow accelerators from "Streaming Tensor Programs: A
// Streaming Abstraction for Dynamic Parallelism" (ASPLOS 2026).
//
// A STeP program is an asynchronous dataflow graph: nodes are operators,
// edges are streams of tiles, selectors, and buffer references punctuated
// by stop tokens that encode tensor structure. The package provides
//
//   - the graph builder with symbolic stream-shape verification,
//   - every STeP operator (off-chip and on-chip memory operators, dynamic
//     routing/merging, higher-order operators, shape operators),
//   - a deterministic cycle-approximate simulator with a Roofline
//     performance model, an HBM model, and on-chip scratchpad accounting,
//   - the symbolic metric equations of the paper's §4.2 (off-chip traffic
//     and on-chip memory requirements), and
//   - the evaluation workloads (MoE layers with static/dynamic tiling and
//     configuration time-multiplexing, decode attention with three
//     parallelization strategies, SwiGLU validation, end-to-end decoders).
//
// Programs are values: a graph is built once, compiled into an
// immutable validated Program, and run any number of times — each Run
// instantiates fresh engine state, so repeated and concurrent runs are
// well-defined. A minimal program:
//
//	g := step.NewGraph()
//	in := step.CountSource(g, "n", 8)
//	dbl := step.Map(g, "double", in, step.MapFn{
//	    Name: "double",
//	    Apply: func(v step.Value) (step.Value, int64, error) {
//	        return step.Scalar{V: v.(step.Scalar).V * 2}, 1, nil
//	    },
//	}, step.ComputeOpts{ComputeBW: 1})
//	step.Capture(g, "out", dbl)
//	prog, err := g.Compile()
//	sess, err := prog.Run(step.WithSeed(7), step.WithSimWorkers(2))
//	// sess.Result holds the metrics; sess.Captured("out") the stream.
//
// Programs built purely from library constructors and library functions
// additionally serialize to a canonical JSON IR (Program.IR,
// step.LoadProgramIR / step.CompileProgramIR), which is what `stepctl
// program`, the scenario "program" kind, and POST /programs on the
// sweep service consume: any user-authored graph — shipped as data, no
// Go code — flows through sweeps, content-addressed caching, and HTTP
// serving.
//
// The legacy mutable API (Graph.Run(Config)) keeps working as a thin
// shim over the same executor and is deprecated: prefer
// Compile()/Run(options). See examples/ for the paper's simplified MoE
// (§3.3), dynamic tiling, dynamic parallelization, an end-to-end
// decoder layer, and a serialized program IR.
package step

import (
	"step/internal/des"
	"step/internal/element"
	"step/internal/graph"
	"step/internal/harness"
	"step/internal/hbm"
	"step/internal/onchip"
	"step/internal/ops"
	"step/internal/scenario"
	"step/internal/shape"
	"step/internal/symbolic"
	"step/internal/tile"
	"step/internal/trace"
	"step/internal/workloads"
)

// Core graph types.
type (
	// Graph is a STeP program under construction (a builder). Compile it
	// into an immutable Program to run it.
	Graph = graph.Graph
	// Builder is an alias for Graph emphasizing the build/compile split.
	Builder = graph.Graph
	// Program is an immutable, validated, compiled STeP program.
	Program = graph.Program
	// Session is the outcome of one Program run.
	Session = graph.Session
	// RunOption configures one Program run (WithSeed, WithSimWorkers, …).
	RunOption = graph.RunOption
	// ProgramIR is the serializable program format (canonical JSON).
	ProgramIR = graph.ProgramIR
	// Stream is a dataflow edge with a symbolic shape and data type.
	Stream = graph.Stream
	// Config parameterizes a simulated run.
	//
	// Deprecated: prefer Program.Run with functional options.
	Config = graph.Config
	// Result summarizes a simulated run.
	Result = graph.Result
	// DType is a stream's data type.
	DType = graph.DType
	// TileType, SelectorType, BufferType, TupleType, ScalarType, and
	// FlagType are the stream data types of §3.1.
	TileType     = graph.TileType
	SelectorType = graph.SelectorType
	BufferType   = graph.BufferType
	TupleType    = graph.TupleType
	ScalarType   = graph.ScalarType
	FlagType     = graph.FlagType
)

// Stream element types.
type (
	// Element is one stream token: data, a stop token, or Done.
	Element = element.Element
	// Value is a data element's payload.
	Value = element.Value
	// Tile is a dense two-dimensional matrix value.
	TileVal = element.TileVal
	// Selector is a multi-hot routing vector.
	Selector = element.Selector
	// Scalar is an integer value (addresses, indices).
	Scalar = element.Scalar
	// Flag is a boolean value (padding indicators, acks).
	Flag = element.Flag
	// Tuple pairs two values (Zip output).
	Tuple = element.Tuple
)

// Shape types.
type (
	// Shape is a stream shape [D_N, …, D_0].
	Shape = shape.Shape
	// Dim is one dimension: static-regular, dynamic-regular, or ragged.
	Dim = shape.Dim
	// Expr is a symbolic integer expression.
	Expr = symbolic.Expr
	// Env binds symbols to values for metric evaluation.
	Env = symbolic.Env
)

// Operator function types.
type (
	// MapFn is an element-wise function for Map.
	MapFn = ops.MapFn
	// AccumFn is a reduction function for Accum and Scan.
	AccumFn = ops.AccumFn
	// FlatMapFn expands one value into a stream fragment.
	FlatMapFn = ops.FlatMapFn
	// ComputeOpts configures the Roofline model of a compute operator.
	ComputeOpts = ops.ComputeOpts
	// OffChipTensor is a tensor resident in off-chip memory.
	OffChipTensor = ops.OffChipTensor
	// CaptureOp records a stream for inspection.
	CaptureOp = ops.CaptureOp
	// Tile is a dense matrix.
	Tile = tile.Tile
	// Time is the virtual clock in cycles.
	Time = des.Time
	// SchedStats is the DES engine's scheduler-contention counter block,
	// reported per run in Result.Sched (all zeroes under the sequential
	// engine).
	SchedStats = des.SchedStats
	// SchedCollector aggregates SchedStats across every simulation run in
	// the process while installed (see SetSchedCollector); tools like
	// `stepctl exp -schedstats` use it to observe runs constructed deep
	// inside a harness.
	SchedCollector = des.SchedCollector
)

// SetSchedCollector installs (or, with nil, removes) the process-global
// scheduler-stats collector.
var SetSchedCollector = des.SetSchedCollector

// NewGraph creates an empty STeP program builder.
func NewGraph() *Graph { return graph.New() }

// NewBuilder is NewGraph under the build/compile naming.
func NewBuilder() *Builder { return graph.New() }

// DefaultConfig is the §5.1 machine: 64 B/cycle on-chip memory units and
// 1024 B/cycle off-chip bandwidth.
func DefaultConfig() Config { return graph.DefaultConfig() }

// Functional run options for Program.Run (see graph package docs).
var (
	WithConfig         = graph.WithConfig
	WithSeed           = graph.WithSeed
	WithSimWorkers     = graph.WithSimWorkers
	WithHBM            = graph.WithHBM
	WithOnchip         = graph.WithOnchip
	WithChannelDepth   = graph.WithChannelDepth
	WithChannelLatency = graph.WithChannelLatency
	WithParams         = graph.WithParams
)

// Program IR entry points: load/parse a serialized program, compile it
// into a runnable Program, and the registry of serializable operator
// kinds.
var (
	LoadProgramIR    = graph.LoadProgramIR
	ParseProgramIR   = graph.ParseProgramIR
	CompileProgramIR = graph.CompileIR
	RegisteredIROps  = graph.RegisteredIROps
)

// ErrAlreadyBound is returned by the deprecated Graph.Run when the same
// graph is already executing on another goroutine. Compiled Programs do
// not have this restriction.
var ErrAlreadyBound = graph.ErrAlreadyBound

// Graph construction helpers re-exported from the ops package. Each
// corresponds to a STeP operator of §3.2 (see Tables 3–7).
var (
	// Sources and sinks.
	Source      = ops.Source
	CountSource = ops.CountSource
	Capture     = ops.Capture
	Sink        = ops.Sink
	Broadcast   = ops.Broadcast
	Take        = ops.Take
	Relay       = ops.Relay
	RelayFeed   = ops.RelayFeed

	// Off-chip memory operators (§3.2.1).
	NewOffChipTensor        = ops.NewOffChipTensor
	LinearOffChipLoad       = ops.LinearOffChipLoad
	LinearOffChipLoadStatic = ops.LinearOffChipLoadStatic
	LinearOffChipStore      = ops.LinearOffChipStore
	RandomOffChipLoad       = ops.RandomOffChipLoad
	RandomOffChipStore      = ops.RandomOffChipStore

	// On-chip memory operators (§3.2.2).
	Bufferize       = ops.Bufferize
	Streamify       = ops.Streamify
	StreamifyLinear = ops.StreamifyLinear

	// Dynamic routing and merging operators (§3.2.3).
	Partition  = ops.Partition
	Reassemble = ops.Reassemble
	EagerMerge = ops.EagerMerge

	// Higher-order operators (§3.2.4).
	Map     = ops.Map
	Map2    = ops.Map2
	Accum   = ops.Accum
	Scan    = ops.Scan
	FlatMap = ops.FlatMap

	// Shape operators (§3.2.5).
	Flatten     = ops.Flatten
	Reshape     = ops.Reshape
	Promote     = ops.Promote
	Expand      = ops.Expand
	Zip         = ops.Zip
	RepeatElems = ops.RepeatElems

	// Function library.
	MatmulFn          = ops.MatmulFn
	MatmulAccFn       = ops.MatmulAccFn
	SiLUFn            = ops.SiLUFn
	ElemMulFn         = ops.ElemMulFn
	ElemAddFn         = ops.ElemAddFn
	RowSoftmaxFn      = ops.RowSoftmaxFn
	ScaleFn           = ops.ScaleFn
	TransposeFn       = ops.TransposeFn
	RetileRowFn       = ops.RetileRowFn
	RetileColFn       = ops.RetileColFn
	RetileStreamifyFn = ops.RetileStreamifyFn
	MatmulOpts        = ops.MatmulOpts
)

// Element constructors.
var (
	// DataOf wraps a value into a data element.
	DataOf = element.DataOf
	// StopOf builds the stop token S_n.
	StopOf = element.StopOf
	// NewSelector builds a multi-hot selector.
	NewSelector = element.NewSelector
	// FormatStream renders a stream like the paper's examples.
	FormatStream = element.FormatStream
)

// DoneElem is the stream-terminating token.
var DoneElem = element.DoneElem

// Shape constructors.
var (
	// NewShape builds a shape from outermost to innermost dims.
	NewShape = shape.New
	// ShapeOfInts builds an all-static shape.
	ShapeOfInts = shape.OfInts
	// StaticDim, DynamicDim, and RaggedDim build dimensions.
	StaticDim  = shape.Static
	DynamicDim = shape.Dynamic
	RaggedDim  = shape.NamedRagged
	// StaticTile and DynamicRowTile build tile types.
	StaticTile     = graph.StaticTile
	DynamicRowTile = graph.DynamicRowTile
	// Sym and Const build symbolic expressions.
	Sym       = symbolic.Sym
	ConstExpr = symbolic.Const
)

// Tile constructors.
var (
	// NewTile allocates a zeroed tile; RandomTile a seeded pseudo-random
	// one; ShapeOnlyTile a tile without element storage (timing-only runs).
	NewTile       = tile.New
	RandomTile    = tile.Random
	ShapeOnlyTile = tile.ShapeOnly
	TileFromRows  = tile.FromRows
)

// Workload and trace entry points for the paper's evaluation.
type (
	// ModelConfig captures a model architecture (Qwen3-30B-A3B, Mixtral).
	ModelConfig = workloads.ModelConfig
	// MoELayerConfig parameterizes the MoE layer of §5.2/§5.3.
	MoELayerConfig = workloads.MoELayerConfig
	// AttentionConfig parameterizes decode attention (§5.4).
	AttentionConfig = workloads.AttentionConfig
	// DecoderConfig parameterizes the end-to-end decoder (§5.5).
	DecoderConfig = workloads.DecoderConfig
	// ExpertRouting is a per-token top-k expert assignment trace.
	ExpertRouting = trace.ExpertRouting
	// SimpleMoEConfig parameterizes the §3.3 walkthrough.
	SimpleMoEConfig = workloads.SimpleMoEConfig
	// SwiGLUConfig parameterizes the Fig. 8 validation layer.
	SwiGLUConfig = workloads.SwiGLUConfig
	// Skew classifies expert-popularity imbalance in routing traces.
	Skew = trace.Skew
	// VarianceClass buckets KV-length variability (App. B.3).
	VarianceClass = trace.VarianceClass
	// ParallelStrategy selects the attention dispatch policy (§5.4).
	ParallelStrategy = workloads.ParallelStrategy
	// DecoderResult aggregates end-to-end metrics (Fig. 17).
	DecoderResult = workloads.DecoderResult
)

// Trace and strategy constants.
const (
	SkewUniform  = trace.SkewUniform
	SkewModerate = trace.SkewModerate
	SkewHeavy    = trace.SkewHeavy

	VarLow  = trace.VarLow
	VarMed  = trace.VarMed
	VarHigh = trace.VarHigh

	StaticCoarse      = workloads.StaticCoarse
	StaticInterleaved = workloads.StaticInterleaved
	DynamicParallel   = workloads.DynamicParallel
)

var (
	// Qwen3Config and MixtralConfig are the §5.1 model architectures.
	Qwen3Config   = workloads.Qwen3Config
	MixtralConfig = workloads.MixtralConfig
	// BuildSimpleMoE builds the §3.3 walkthrough example;
	// DefaultSimpleMoEConfig reproduces the paper's dimensions.
	BuildSimpleMoE         = workloads.BuildSimpleMoE
	DefaultSimpleMoEConfig = workloads.DefaultSimpleMoEConfig
	// BuildMoELayer, BuildAttention, BuildSwiGLU, and RunDecoder build the
	// evaluation workloads.
	BuildMoELayer  = workloads.BuildMoELayer
	BuildAttention = workloads.BuildAttention
	BuildSwiGLU    = workloads.BuildSwiGLU
	RunDecoder     = workloads.RunDecoder
	// SampleExpertRouting and SampleKVLengths generate synthetic traces.
	SampleExpertRouting = trace.SampleExpertRouting
	SampleKVLengths     = trace.SampleKVLengths
)

// HBMConfig and OnchipConfig re-export the machine-model configurations.
type (
	HBMConfig    = hbm.Config
	OnchipConfig = onchip.Config
)

// Declarative scenario sweeps (internal/scenario): describe a model, a
// workload kind, and sweep axes as data — a Go struct or a JSON file —
// and compile the grid onto the workload entry points, fanned out on
// the parallel experiment harness.
type (
	// ScenarioSpec declares a scenario sweep (JSON file format).
	ScenarioSpec = scenario.Spec
	// ScenarioModelSpec names a built-in model or embeds one inline.
	ScenarioModelSpec = scenario.ModelSpec
	// RequestGroup is one slice of a heterogeneous serving batch.
	RequestGroup = scenario.RequestGroup
	// SweepSuite configures a sweep run (seed, workers, DES engine).
	SweepSuite = harness.Suite
	// SweepTable is a rendered sweep result.
	SweepTable = harness.Table
)

var (
	// LoadScenario reads and validates a spec file; ParseScenario
	// decodes one from bytes.
	LoadScenario  = scenario.Load
	ParseScenario = scenario.Parse
	// RunScenario compiles and executes a spec's sweep grid.
	RunScenario = scenario.Run
	// BuiltinScenarios lists the canned specs (re-registered paper
	// figures plus the beyond-the-paper families); LookupScenario finds
	// one by ID.
	BuiltinScenarios = scenario.Builtin
	LookupScenario   = scenario.LookupBuiltin
)
