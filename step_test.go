package step_test

import (
	"strings"
	"testing"

	"step"
)

// TestQuickstartAPI exercises the package's public surface the way the
// doc comment shows.
func TestQuickstartAPI(t *testing.T) {
	g := step.NewGraph()
	in := step.CountSource(g, "n", 8)
	dbl := step.Map(g, "double", in, step.MapFn{
		Name: "double",
		Apply: func(v step.Value) (step.Value, int64, error) {
			return step.Scalar{V: v.(step.Scalar).V * 2}, 1, nil
		},
	}, step.ComputeOpts{ComputeBW: 1})
	out := step.Capture(g, "out", dbl)
	res, err := g.Run(step.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	got := step.FormatStream(out.Elements())
	if got != "0,2,4,6,8,10,12,14,D" {
		t.Fatalf("captured %s", got)
	}
}

// TestListingOneShapeInspection mirrors Listing 1's shape-introspection
// workflow: the frontend exposes and verifies stream shapes.
func TestListingOneShapeInspection(t *testing.T) {
	moe, err := step.BuildSimpleMoE(step.DefaultSimpleMoEConfig())
	if err != nil {
		t.Fatal(err)
	}
	dot := moe.Graph.Dot("moe")
	if !strings.Contains(dot, "Partition") && !strings.Contains(dot, "route") {
		t.Fatalf("dot output missing nodes: %s", dot[:120])
	}
	// Every edge label carries a shape.
	if !strings.Contains(dot, "[") {
		t.Fatal("dot edges missing shapes")
	}
}

// TestPublicWorkloads runs each evaluation workload through the facade.
func TestPublicWorkloads(t *testing.T) {
	model := step.Qwen3Config().Scaled(8)
	routing, err := step.SampleExpertRouting(16, model.NumExperts, model.TopK, step.SkewModerate, 1)
	if err != nil {
		t.Fatal(err)
	}
	layer, err := step.BuildMoELayer(step.MoELayerConfig{
		Model: model, Batch: 16, Dynamic: true, Routing: routing, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := layer.Graph.Run(step.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	kv := step.SampleKVLengths(16, 512, step.VarMed, 1)
	attn, err := step.BuildAttention(step.AttentionConfig{
		Model: model, KVLens: kv, Strategy: step.DynamicParallel, Regions: 4, KVChunk: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := attn.Graph.Run(step.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if attn.CompletedRequests() != 16 {
		t.Fatalf("completed %d", attn.CompletedRequests())
	}

	sw, err := step.BuildSwiGLU(step.SwiGLUConfig{
		Batch: 16, Hidden: 32, Inter: 64, BatchTile: 8, InterTile: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Graph.Run(step.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestSymbolicShapes exercises the exported shape/expr constructors.
func TestSymbolicShapes(t *testing.T) {
	sh := step.NewShape(step.StaticDim(2), step.DynamicDim(step.Sym("D")), step.RaggedDim("R"))
	if sh.Rank() != 3 {
		t.Fatalf("rank %d", sh.Rank())
	}
	card := sh.Cardinality()
	v, err := card.Eval(step.Env{"D": 3, "R": 4})
	if err != nil || v != 24 {
		t.Fatalf("cardinality = %d, %v", v, err)
	}
}
