package step_test

import (
	"testing"

	"step"
	"step/internal/trace"
	"step/internal/workloads"
)

// TestSchedStatsGate is the CI contention gate for the parallel engine's
// sharded wake-up machinery (run by `make bench-smoke`). The counters it
// checks depend on the workload's virtual-time structure, not on core
// count or wall-clock interleaving, so the bounds hold on any hardware —
// including the 1-CPU runner where wall-clock speedups are meaningless.
//
// Reference points on moe-layer (Qwen3 scaled /8, batch 64, dynamic
// tiling, skew-heavy routing, seed 7, sim-workers=8):
//
//   - pre-shard engine (global O(parked) kick scan): scanned/lift = 510.73
//   - sharded engine (per-endpoint waiter lists):    scanned/lift ≈ 0.59
//
// The gate asserts scanned/lift <= 10 — a 51x margin over the measured
// value and still 51x below the pre-shard engine — so it fails loudly if
// a global scan ever creeps back into the lift path, without flaking on
// benign scheduling jitter.
func TestSchedStatsGate(t *testing.T) {
	m := workloads.Qwen3Config().Scaled(8)
	routing, err := trace.SampleExpertRouting(64, m.NumExperts, m.TopK, trace.SkewHeavy, 7)
	if err != nil {
		t.Fatal(err)
	}
	l, err := workloads.BuildMoELayer(workloads.MoELayerConfig{
		Model: m, Batch: 64, Dynamic: true, Routing: routing, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := step.DefaultConfig()
	cfg.SimWorkers = 8
	res, err := l.Graph.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sched
	t.Logf("sched: lifts=%d lift-fastpath=%d kicks=%d scanned=%d woken=%d grants=%d grant-fastpath=%d scanned/lift=%.3f",
		s.Lifts, s.LiftFastPath, s.Kicks, s.Scanned, s.Woken, s.Grants, s.GrantFastPath, s.ScannedPerLift())

	if s.Lifts == 0 || s.Grants == 0 {
		t.Fatalf("gate workload lost its contention shape: lifts=%d grants=%d (both must be > 0)", s.Lifts, s.Grants)
	}
	if spl := s.ScannedPerLift(); spl > 10 {
		t.Errorf("scanned/lift = %.2f, want <= 10 (sharded engine measures ~0.59; the pre-shard global scan measured 510.73)", spl)
	}
	// The lift fast path is the batched-lift claim: the overwhelming
	// majority of clock movements must touch no scheduler state beyond
	// two atomic threshold loads.
	if frac := float64(s.LiftFastPath) / float64(s.Lifts); frac < 0.5 {
		t.Errorf("lift fast-path fraction = %.2f, want >= 0.5 (measured ~0.93)", frac)
	}
	// The sequential engine must stay out of the counters entirely.
	cfgSeq := step.DefaultConfig()
	l2, err := workloads.BuildMoELayer(workloads.MoELayerConfig{
		Model: m, Batch: 64, Dynamic: true, Routing: routing, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	resSeq, err := l2.Graph.Run(cfgSeq)
	if err != nil {
		t.Fatal(err)
	}
	if resSeq.Sched != (step.SchedStats{}) {
		t.Errorf("sequential engine reported non-zero SchedStats: %+v", resSeq.Sched)
	}
}
