package step

import (
	"fmt"
	"runtime"
	"testing"

	"step/internal/des"
	"step/internal/element"
	"step/internal/experiments"
	"step/internal/trace"
	"step/internal/workloads"
)

// benchSuite shrinks sweeps so each benchmark iteration stays fast while
// still executing the full experiment pipeline.
func benchSuite() experiments.Suite { return experiments.Suite{Seed: 7, Quick: true} }

// runExperiment executes one paper artifact per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	s := benchSuite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb, err := r.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// One benchmark per paper table/figure, named for the artifact each
// regenerates (see DESIGN.md's per-experiment index).

func BenchmarkTable1Landscape(b *testing.B)                 { runExperiment(b, "table1") }
func BenchmarkFigure1Roofline(b *testing.B)                 { runExperiment(b, "fig1") }
func BenchmarkFigure8Validation(b *testing.B)               { runExperiment(b, "fig8") }
func BenchmarkFigure9DynamicTiling(b *testing.B)            { runExperiment(b, "fig9") }
func BenchmarkFigure10DynamicTilingLargeBatch(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFigure12TimeMultiplexUtilization(b *testing.B) {
	runExperiment(b, "fig12")
}
func BenchmarkFigure13TimeMultiplexResources(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFigure14DynamicParallelization(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFigure15BatchSweep(b *testing.B)              { runExperiment(b, "fig15") }
func BenchmarkFigure17EndToEnd(b *testing.B)                { runExperiment(b, "fig17") }
func BenchmarkFigure18Transform(b *testing.B)               { runExperiment(b, "fig18") }
func BenchmarkFigure19TrafficPareto(b *testing.B)           { runExperiment(b, "fig19") }
func BenchmarkFigure20TrafficParetoLargeBatch(b *testing.B) { runExperiment(b, "fig20") }
func BenchmarkFigure21ParallelizationAblation(b *testing.B) { runExperiment(b, "fig21") }

// benchWorkerCounts compares the sequential path against all cores,
// skipping the duplicate case on single-CPU machines.
func benchWorkerCounts() []int {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkSuiteParallel measures the experiment harness fan-out on the
// sweep-heavy figures (9/10/15/19/20/21): each ID runs at Workers=1
// (the pre-harness sequential path) and Workers=GOMAXPROCS, so the
// parallel speedup is a measured ratio rather than an assertion.
func BenchmarkSuiteParallel(b *testing.B) {
	ids := []string{"fig9", "fig10", "fig15", "fig19", "fig20", "fig21"}
	counts := benchWorkerCounts()
	for _, id := range ids {
		for _, w := range counts {
			b.Run(fmt.Sprintf("%s/workers=%d", id, w), func(b *testing.B) {
				r, ok := experiments.Lookup(id)
				if !ok {
					b.Fatalf("unknown experiment %q", id)
				}
				s := benchSuite()
				s.Workers = w
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tb, err := r.Run(s)
					if err != nil {
						b.Fatal(err)
					}
					if len(tb.Rows) == 0 {
						b.Fatal("empty result")
					}
				}
			})
		}
	}
}

// BenchmarkRunAll measures the whole-registry fan-out behind
// cmd/experiments: all fourteen artifacts at Workers=1 vs all cores.
func BenchmarkRunAll(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			s := benchSuite()
			s.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, oc := range experiments.RunAll(s, experiments.All()) {
					if oc.Err != nil {
						b.Fatalf("%s: %v", oc.Runner.ID, oc.Err)
					}
				}
			}
		})
	}
}

// benchSimWorkers returns the DES engine configurations to compare: the
// sequential reference engine (1) and the conservative parallel engine at
// the 2/4/8-core points, so BENCH_core.json tracks a scaling curve rather
// than a single ratio.
func benchSimWorkers() []int { return []int{1, 2, 4, 8} }

// pinGOMAXPROCS models a w-core runner for a sim-workers=w variant by
// capping GOMAXPROCS at min(w, NumCPU) for the variant's duration. On a
// machine with fewer cores than w the cap is the machine itself — the
// recorded point then measures oversubscription, not scaling, which is
// why BENCH_core.json carries num_cpu (see PERFORMANCE.md).
func pinGOMAXPROCS(w int) (restore func()) {
	n := w
	if c := runtime.NumCPU(); n > c {
		n = c
	}
	if n < 1 {
		n = 1
	}
	old := runtime.GOMAXPROCS(n)
	return func() { runtime.GOMAXPROCS(old) }
}

// BenchmarkEngineCompare measures the same simulations on the sequential
// and the DAM-style parallel DES engine (identical results by
// construction; see internal/des). make bench-json renders these into
// BENCH_core.json so the perf trajectory of the simulator core is
// tracked over time.
func BenchmarkEngineCompare(b *testing.B) {
	for _, id := range []string{"fig10", "fig17"} {
		r, ok := experiments.Lookup(id)
		if !ok {
			b.Fatalf("unknown experiment %q", id)
		}
		for _, w := range benchSimWorkers() {
			b.Run(fmt.Sprintf("%s/sim-workers=%d", id, w), func(b *testing.B) {
				defer pinGOMAXPROCS(w)()
				s := benchSuite()
				// Workers=1 disables the harness's sweep-point fan-out so
				// the measured speedup isolates the DES engine.
				s.Workers = 1
				s.SimWorkers = w
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tb, err := r.Run(s)
					if err != nil {
						b.Fatal(err)
					}
					if len(tb.Rows) == 0 {
						b.Fatal("empty result")
					}
				}
			})
		}
	}
	m := workloads.Qwen3Config().Scaled(8)
	routing, err := trace.SampleExpertRouting(64, m.NumExperts, m.TopK, trace.SkewHeavy, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchSimWorkers() {
		b.Run(fmt.Sprintf("moe-layer/sim-workers=%d", w), func(b *testing.B) {
			defer pinGOMAXPROCS(w)()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l, err := workloads.BuildMoELayer(workloads.MoELayerConfig{
					Model: m, Batch: 64, Dynamic: true, Routing: routing, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				cfg := DefaultConfig()
				cfg.SimWorkers = w
				if _, err := l.Graph.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	kv := trace.SampleKVLengths(64, 2048, trace.VarHigh, 7)
	for _, w := range benchSimWorkers() {
		b.Run(fmt.Sprintf("attention/sim-workers=%d", w), func(b *testing.B) {
			defer pinGOMAXPROCS(w)()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, err := workloads.BuildAttention(workloads.AttentionConfig{
					Model: m, KVLens: kv, Strategy: workloads.DynamicParallel,
					Regions: 4, KVChunk: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				cfg := DefaultConfig()
				cfg.SimWorkers = w
				if _, err := a.Graph.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSymbolicMetrics measures the §4.2 symbolic-frontend path:
// building a full MoE graph and evaluating its traffic and on-chip
// equations under the trace bindings.
func BenchmarkSymbolicMetrics(b *testing.B) {
	m := workloads.Qwen3Config().Scaled(8)
	routing, err := trace.SampleExpertRouting(64, m.NumExperts, m.TopK, trace.SkewHeavy, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, err := workloads.BuildMoELayer(workloads.MoELayerConfig{
			Model: m, Batch: 64, TileSize: 16, Routing: routing, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.OnchipBytes(); err != nil {
			b.Fatal(err)
		}
		if _, err := l.SymbolicTrafficBytes(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESChannel measures the simulation kernel's raw throughput:
// a producer/consumer pair moving one million elements.
func BenchmarkDESChannel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := des.New()
		ch := des.NewChan[int](sim, "c", 16, 1)
		const n = 100000
		sim.Spawn("prod", func(p *des.Process) error {
			for j := 0; j < n; j++ {
				p.Advance(1)
				ch.Send(p, j)
			}
			ch.Close(p)
			return nil
		})
		sim.Spawn("cons", func(p *des.Process) error {
			for {
				if _, ok := ch.Recv(p); !ok {
					return nil
				}
				p.Advance(1)
			}
		})
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMoELayerSimulation measures one batch-64 MoE layer simulation
// (the unit of work behind Figs. 9/12/13).
func BenchmarkMoELayerSimulation(b *testing.B) {
	m := workloads.Qwen3Config().Scaled(8)
	routing, err := trace.SampleExpertRouting(64, m.NumExperts, m.TopK, trace.SkewHeavy, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, err := workloads.BuildMoELayer(workloads.MoELayerConfig{
			Model: m, Batch: 64, Dynamic: true, Routing: routing, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.Graph.Run(DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttentionSimulation measures one batch-64 dynamic-parallel
// attention simulation (the unit of work behind Figs. 14/15/21).
func BenchmarkAttentionSimulation(b *testing.B) {
	m := workloads.Qwen3Config().Scaled(8)
	kv := trace.SampleKVLengths(64, 2048, trace.VarHigh, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := workloads.BuildAttention(workloads.AttentionConfig{
			Model: m, KVLens: kv, Strategy: workloads.DynamicParallel,
			Regions: 4, KVChunk: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Graph.Run(DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimpleMoE measures the §3.3 walkthrough end to end, including
// functional verification data movement.
func BenchmarkSimpleMoE(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		moe, err := workloads.BuildSimpleMoE(workloads.DefaultSimpleMoEConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := moe.Graph.Run(DefaultConfig()); err != nil {
			b.Fatal(err)
		}
		if element.CountData(moe.Output.Elements()) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkCompileOnceRunMany measures the payoff of the Program API's
// build/run split: one compiled MoE-layer program run repeatedly
// (fresh engine state per run) against the legacy rebuild-per-point
// shape where every run reconstructs the whole graph first.
func BenchmarkCompileOnceRunMany(b *testing.B) {
	m := workloads.Qwen3Config().Scaled(8)
	routing, err := trace.SampleExpertRouting(64, m.NumExperts, m.TopK, trace.SkewHeavy, 7)
	if err != nil {
		b.Fatal(err)
	}
	cfg := workloads.MoELayerConfig{
		Model: m, Batch: 64, Dynamic: true, Routing: routing, Seed: 7,
	}
	b.Run("compile-once", func(b *testing.B) {
		l, err := workloads.BuildMoELayer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.Program.Run(WithSeed(7)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild-per-run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l, err := workloads.BuildMoELayer(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := l.Program.Run(WithSeed(7)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
