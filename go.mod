module step

go 1.24
