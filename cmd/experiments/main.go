// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                 # run everything, print console tables
//	experiments -fig fig9       # run one experiment
//	experiments -out results/   # also write one CSV per experiment
//	experiments -quick          # shrink sweeps for a fast smoke run
//	experiments -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"step/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "", "run a single experiment by ID (e.g. fig9)")
		out   = flag.String("out", "", "directory to write CSV results into")
		seed  = flag.Uint64("seed", 7, "trace seed")
		quick = flag.Bool("quick", false, "shrink sweeps for a fast run")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Desc)
		}
		return
	}

	suite := experiments.Suite{Seed: *seed, Quick: *quick}
	runners := experiments.All()
	if *fig != "" {
		r, ok := experiments.Lookup(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *fig)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	failed := false
	for _, r := range runners {
		start := time.Now()
		tb, err := r.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, err)
			failed = true
			continue
		}
		fmt.Println(tb.String())
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
		if *out != "" {
			path := filepath.Join(*out, tb.ID+".csv")
			if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", path, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
