// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                 # run everything, print console tables
//	experiments -fig fig9       # run one experiment
//	experiments -spec spec.json # run a declarative scenario sweep instead
//	experiments -out results/   # also write one CSV per experiment
//	experiments -quick          # shrink sweeps for a fast smoke run
//	experiments -workers 4      # bound the parallel fan-out (0 = all CPUs)
//	experiments -sim-workers 8  # parallel DES engine inside each simulation
//	experiments -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"step/internal/experiments"
	"step/internal/scenario"
)

func main() {
	var (
		fig        = flag.String("fig", "", "run a single experiment by ID (e.g. fig9)")
		spec       = flag.String("spec", "", "run a scenario spec JSON file through the same reporting path")
		out        = flag.String("out", "", "directory to write CSV results into")
		seed       = flag.Uint64("seed", 7, "trace seed")
		quick      = flag.Bool("quick", false, "shrink sweeps for a fast run")
		workers    = flag.Int("workers", 0, "parallel sweep workers (0 = one per CPU, 1 = sequential)")
		simWorkers = flag.Int("sim-workers", 0, "DES engine per simulation: 0/1 = sequential reference engine, >=2 = conservative parallel engine (identical results)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Desc)
		}
		return
	}

	suite := experiments.Suite{Seed: *seed, Quick: *quick, Workers: *workers, SimWorkers: *simWorkers}
	runners := experiments.All()
	if *fig != "" {
		r, ok := experiments.Lookup(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *fig)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}
	if *spec != "" {
		if *fig != "" {
			fmt.Fprintln(os.Stderr, "experiments: -fig and -spec are mutually exclusive")
			os.Exit(1)
		}
		sp, err := scenario.Load(*spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		runners = []experiments.Runner{{ID: sp.ID, Desc: sp.Title,
			Run: func(s experiments.Suite) (*experiments.Table, error) { return scenario.Run(sp, s) }}}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	failed := false
	report := func(oc experiments.Outcome) {
		if oc.Err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", oc.Runner.ID, oc.Err)
			failed = true
			return
		}
		fmt.Println(oc.Table.String())
		fmt.Printf("   (%.1fs)\n\n", oc.Elapsed.Seconds())
		if *out != "" {
			path := filepath.Join(*out, oc.Table.ID+".csv")
			if err := os.WriteFile(path, []byte(oc.Table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", path, err)
				failed = true
			}
		}
	}
	// Stream results while preserving registry order: an outcome prints
	// as soon as everything before it has printed, so long-running
	// parallel suites show progress and the output is stable across
	// worker counts (timings aside).
	pending := make([]*experiments.Outcome, len(runners))
	printed := 0
	experiments.RunAllProgress(suite, runners, func(oc experiments.Outcome) {
		pending[oc.Index] = &oc
		for printed < len(pending) && pending[printed] != nil {
			report(*pending[printed])
			pending[printed] = nil
			printed++
		}
	})
	if failed {
		os.Exit(1)
	}
}
