// Command benchjson converts `go test -bench` output (read from stdin)
// into a machine-readable JSON artifact, including derived
// sequential-vs-parallel DES engine speedups from the
// BenchmarkEngineCompare sub-benchmarks. CI runs it via `make bench-json`
// to emit BENCH_core.json, so the perf trajectory of the simulator core
// is tracked from one PR to the next.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark measurement.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Speedup is a derived sequential-vs-parallel engine ratio.
type Speedup struct {
	Workload   string  `json:"workload"`
	SeqNsPerOp float64 `json:"seq_ns_per_op"`
	ParNsPerOp float64 `json:"par_ns_per_op"`
	ParWorkers int     `json:"par_sim_workers"`
	Speedup    float64 `json:"speedup"`
}

// Report is the emitted artifact.
type Report struct {
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	NumCPU     int       `json:"num_cpu"`
	Benchmarks []Bench   `json:"benchmarks"`
	Speedups   []Speedup `json:"engine_speedups,omitempty"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	rep := Report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		b := Bench{Name: trimCPUSuffix(fields[0])}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b.Iterations = iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep.Speedups = deriveSpeedups(rep.Benchmarks)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// trimCPUSuffix drops the "-8" GOMAXPROCS suffix go test appends.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// deriveSpeedups pairs BenchmarkEngineCompare/<workload>/sim-workers=1
// with the highest-worker variant of the same workload.
func deriveSpeedups(benches []Bench) []Speedup {
	type variant struct {
		workers int
		ns      float64
	}
	byWorkload := map[string][]variant{}
	for _, b := range benches {
		rest, ok := strings.CutPrefix(b.Name, "BenchmarkEngineCompare/")
		if !ok {
			continue
		}
		workload, cfg, ok := strings.Cut(rest, "/sim-workers=")
		if !ok {
			continue
		}
		w, err := strconv.Atoi(cfg)
		if err != nil {
			continue
		}
		byWorkload[workload] = append(byWorkload[workload], variant{w, b.NsPerOp})
	}
	var out []Speedup
	for workload, vs := range byWorkload {
		var seq, par variant
		for _, v := range vs {
			if v.workers <= 1 {
				seq = v
			} else if v.workers > par.workers {
				par = v
			}
		}
		if seq.ns == 0 || par.ns == 0 {
			continue
		}
		out = append(out, Speedup{
			Workload:   workload,
			SeqNsPerOp: seq.ns,
			ParNsPerOp: par.ns,
			ParWorkers: par.workers,
			Speedup:    seq.ns / par.ns,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}
