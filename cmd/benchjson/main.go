// Command benchjson converts `go test -bench` output (read from stdin)
// into a machine-readable JSON artifact, including derived
// sequential-vs-parallel DES engine speedups from the
// BenchmarkEngineCompare sub-benchmarks. CI runs it via `make bench-json`
// to emit BENCH_core.json, so the perf trajectory of the simulator core
// is tracked from one PR to the next.
//
// With -compare <baseline.json> it instead gates a run against a committed
// report: >20% allocs/op growth on any shared benchmark fails (allocations
// are deterministic, so this is a reliable signal even on noisy CI boxes);
// >20% ns/op growth only warns, because wall time does not transfer across
// machines — pass -strict to fail on time regressions too (for like-for-
// like hardware).
//
// With -speedups <report.json> it renders the report's engine_speedups as
// a per-workload scaling table (what PERFORMANCE.md embeds), flagging
// reports recorded on fewer CPUs than the widest sim-workers variant.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Bench is one benchmark measurement.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Speedup is a derived sequential-vs-parallel engine ratio.
type Speedup struct {
	Workload   string  `json:"workload"`
	SeqNsPerOp float64 `json:"seq_ns_per_op"`
	ParNsPerOp float64 `json:"par_ns_per_op"`
	ParWorkers int     `json:"par_sim_workers"`
	Speedup    float64 `json:"speedup"`
}

// Report is the emitted artifact.
type Report struct {
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	NumCPU     int       `json:"num_cpu"`
	Benchmarks []Bench   `json:"benchmarks"`
	Speedups   []Speedup `json:"engine_speedups,omitempty"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	compare := flag.String("compare", "", "baseline report to gate against (fails on >20% allocs/op growth)")
	strict := flag.Bool("strict", false, "with -compare: fail on ns/op regressions too (like-for-like hardware only)")
	speedups := flag.String("speedups", "", "render a report's engine speedups as a table and exit (no stdin)")
	flag.Parse()

	if *speedups != "" {
		if err := printSpeedups(*speedups); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rep := Report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		b := Bench{Name: trimCPUSuffix(fields[0])}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b.Iterations = iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep.Speedups = deriveSpeedups(rep.Benchmarks)

	if *compare != "" {
		if err := compareReports(*compare, rep, *strict); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// regressionTolerance is the benchstat-style gate: a shared benchmark may
// grow by at most 20% before the comparison flags it.
const regressionTolerance = 1.20

// minGatedAllocs ignores benchmarks whose baseline allocation count is in
// the noise floor (a 20% swing on 50 allocs is scheduling jitter, not a
// hot-path regression).
const minGatedAllocs = 500

// compareReports gates cur against the baseline report at path: any
// shared benchmark whose allocs/op grew past the tolerance is a failure
// (allocations are deterministic); ns/op growth warns, or fails under
// strict. Benchmarks present on only one side are reported informationally
// — the gate must not block adding or renaming benchmarks.
func compareReports(path string, cur Report, strict bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	baseBy := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	// A baseline recorded on fewer CPUs than the widest parallel variant
	// cannot show scaling: every sim-workers>num_cpu measurement is the
	// coordination overhead of multiplexing workers onto too few cores.
	// Say so explicitly instead of letting the numbers mislead.
	if maxW := maxSimWorkers(cur.Speedups); base.NumCPU > 0 && base.NumCPU < maxW {
		fmt.Printf("note      baseline num_cpu=%d < max sim-workers=%d: parallel variants measure coordination overhead, not scaling\n",
			base.NumCPU, maxW)
	}
	var failures, warnings []string
	shared := 0
	for _, c := range cur.Benchmarks {
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Printf("new       %s (no baseline)\n", c.Name)
			continue
		}
		shared++
		if b.AllocsPerOp >= minGatedAllocs && c.AllocsPerOp > 0 {
			ratio := float64(c.AllocsPerOp) / float64(b.AllocsPerOp)
			if ratio > regressionTolerance {
				failures = append(failures, fmt.Sprintf(
					"%s: allocs/op %d -> %d (%.2fx)", c.Name, b.AllocsPerOp, c.AllocsPerOp, ratio))
			}
		}
		if b.NsPerOp > 0 && c.NsPerOp > 0 {
			ratio := c.NsPerOp / b.NsPerOp
			if ratio > regressionTolerance {
				msg := fmt.Sprintf("%s: ns/op %.0f -> %.0f (%.2fx)", c.Name, b.NsPerOp, c.NsPerOp, ratio)
				if strict {
					failures = append(failures, msg)
				} else {
					warnings = append(warnings, msg)
				}
			}
		}
	}
	for _, w := range warnings {
		fmt.Printf("warn      %s\n", w)
	}
	for _, f := range failures {
		fmt.Printf("REGRESSED %s\n", f)
	}
	fmt.Printf("compared %d benchmarks against %s (baseline num_cpu=%d, this run num_cpu=%d): %d regression(s), %d warning(s)\n",
		shared, path, base.NumCPU, cur.NumCPU, len(failures), len(warnings))
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark regression(s) beyond %.0f%%", len(failures), (regressionTolerance-1)*100)
	}
	return nil
}

// maxSimWorkers returns the widest parallel variant in a speedup set.
func maxSimWorkers(sps []Speedup) int {
	max := 0
	for _, s := range sps {
		if s.ParWorkers > max {
			max = s.ParWorkers
		}
	}
	return max
}

// printSpeedups renders a report's engine_speedups as the per-workload
// scaling table PERFORMANCE.md embeds, replacing the ad-hoc scripting
// that used to post-process the JSON.
func printSpeedups(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rep.Speedups) == 0 {
		return fmt.Errorf("%s has no engine_speedups (regenerate with `make bench-json`)", path)
	}
	fmt.Printf("engine scaling from %s (%s/%s, num_cpu=%d):\n\n", path, rep.GOOS, rep.GOARCH, rep.NumCPU)
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tsim-workers\tseq ms/op\tpar ms/op\tspeedup")
	prev := ""
	for _, s := range rep.Speedups {
		name := s.Workload
		if name == prev {
			name = ""
		} else {
			prev = name
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.2fx\n",
			name, s.ParWorkers, s.SeqNsPerOp/1e6, s.ParNsPerOp/1e6, s.Speedup)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if maxW := maxSimWorkers(rep.Speedups); rep.NumCPU > 0 && rep.NumCPU < maxW {
		fmt.Printf("\nnote: recorded with num_cpu=%d < max sim-workers=%d — parallel variants measure coordination overhead, not scaling.\n",
			rep.NumCPU, maxW)
	}
	return nil
}

// trimCPUSuffix drops the "-8" GOMAXPROCS suffix go test appends.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// deriveSpeedups pairs BenchmarkEngineCompare/<workload>/sim-workers=1
// with every parallel variant of the same workload, yielding a scaling
// curve per workload rather than a single best-case ratio.
func deriveSpeedups(benches []Bench) []Speedup {
	type variant struct {
		workers int
		ns      float64
	}
	byWorkload := map[string][]variant{}
	for _, b := range benches {
		rest, ok := strings.CutPrefix(b.Name, "BenchmarkEngineCompare/")
		if !ok {
			continue
		}
		workload, cfg, ok := strings.Cut(rest, "/sim-workers=")
		if !ok {
			continue
		}
		w, err := strconv.Atoi(cfg)
		if err != nil {
			continue
		}
		byWorkload[workload] = append(byWorkload[workload], variant{w, b.NsPerOp})
	}
	// Iterate workloads in sorted order so row order never depends on map
	// iteration (stepvet: determinism — same idiom the sim packages use).
	workloads := make([]string, 0, len(byWorkload))
	for w := range byWorkload {
		workloads = append(workloads, w)
	}
	sort.Strings(workloads)
	var out []Speedup
	for _, workload := range workloads {
		vs := byWorkload[workload]
		var seq variant
		for _, v := range vs {
			if v.workers <= 1 {
				seq = v
			}
		}
		if seq.ns == 0 {
			continue
		}
		for _, par := range vs {
			if par.workers <= 1 || par.ns == 0 {
				continue
			}
			out = append(out, Speedup{
				Workload:   workload,
				SeqNsPerOp: seq.ns,
				ParNsPerOp: par.ns,
				ParWorkers: par.workers,
				Speedup:    seq.ns / par.ns,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].ParWorkers < out[j].ParWorkers
	})
	return out
}
