// Command stepctl is the library's utility CLI.
//
// Usage:
//
//	stepctl demo               # run the §3.3 simplified MoE and report metrics
//	stepctl dot                # print the simplified MoE graph in Graphviz DOT
//	stepctl tables             # print the STeP operator reference (Tables 3–7)
//	stepctl moe [flags]        # run one MoE-layer configuration
//	stepctl exp [flags]        # run paper experiments on the parallel harness
//	stepctl sweep [flags]      # run a declarative scenario sweep (JSON spec)
//	stepctl serve [flags]      # serve sweeps over HTTP with a result cache
//	stepctl worker -join <server>
//	                           # join a server as a remote sweep-point worker
//	stepctl watch <server> <job-id>
//	                           # tail a served sweep's row stream live
//	stepctl program <compile|dot|run> -ir file.json
//	                           # validate, render, or execute a program IR
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"step"
	"step/internal/experiments"
	"step/internal/fabric"
	"step/internal/harness"
	"step/internal/scenario"
	"step/internal/service"
	"step/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "demo":
		err = demo()
	case "dot":
		err = dot()
	case "tables":
		tables()
	case "moe":
		err = moe(os.Args[2:])
	case "exp":
		err = exp(os.Args[2:])
	case "sweep":
		err = sweep(os.Args[2:])
	case "serve":
		err = serve(os.Args[2:])
	case "worker":
		err = workerCmd(os.Args[2:])
	case "watch":
		err = watch(os.Args[2:])
	case "program":
		err = program(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stepctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: stepctl <demo|dot|tables|moe|exp|sweep|serve|worker|watch|program> [flags]")
}

// program works with serializable program IRs: compile validates and
// summarizes one, dot renders it in Graphviz DOT format, and run
// executes it with fresh engine state.
func program(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: stepctl program <compile|dot|run> -ir file.json [flags]")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "compile", "dot", "run":
	default:
		return fmt.Errorf("program: unknown subcommand %q (want compile, dot, or run)", sub)
	}
	fs := flag.NewFlagSet("program "+sub, flag.ExitOnError)
	irPath := fs.String("ir", "", "path to a program IR JSON file")
	var (
		title      = fs.String("title", "", "graph title (dot; defaults to the program name)")
		seed       = fs.Uint64("seed", 7, "run seed (run)")
		simWorkers = fs.Int("sim-workers", 0, "DES engine: 0/1 sequential, >=2 conservative parallel (run)")
		depth      = fs.Int("depth", 0, "default stream FIFO depth override (run; 0 = default 16)")
	)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *irPath == "" {
		return fmt.Errorf("program %s: need -ir <file.json>", sub)
	}
	ir, err := step.LoadProgramIR(*irPath)
	if err != nil {
		return err
	}
	prog, err := step.CompileProgramIR(ir)
	if err != nil {
		return err
	}
	switch sub {
	case "compile":
		hash, err := prog.Hash()
		if err != nil {
			return err
		}
		name := prog.Name()
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Printf("program:            %s\n", name)
		fmt.Printf("nodes:              %d\n", prog.NodeCount())
		fmt.Printf("streams:            %d\n", prog.StreamCount())
		fmt.Printf("canonical hash:     %s\n", hash)
		fmt.Printf("onchip bytes (§4.2): %s\n", prog.OnchipBytesExpr())
		fmt.Printf("offchip bytes (§4.2): %s\n", prog.OffchipTrafficBytesExpr())
		fmt.Printf("alloc compute BW:   %d FLOPs/cycle\n", prog.AllocatedComputeBW())
		return nil
	case "dot":
		t := *title
		if t == "" {
			t = prog.Name()
		}
		if t == "" {
			t = "program"
		}
		fmt.Print(prog.Dot(t))
		return nil
	case "run":
		opts := []step.RunOption{step.WithSeed(*seed), step.WithSimWorkers(*simWorkers)}
		if *depth > 0 {
			opts = append(opts, step.WithChannelDepth(*depth))
		}
		sess, err := prog.Run(opts...)
		if err != nil {
			return err
		}
		res := sess.Result
		fmt.Printf("cycles:             %d\n", res.Cycles)
		fmt.Printf("off-chip traffic:   %d bytes\n", res.OffchipTrafficBytes)
		fmt.Printf("peak on-chip:       %d bytes\n", res.PeakOnchipBytes)
		fmt.Printf("total FLOPs:        %d\n", res.TotalFLOPs)
		for _, name := range sess.CaptureNames() {
			es, _ := sess.Captured(name)
			fmt.Printf("captured %q:        %d elements\n", name, len(es))
		}
		return nil
	}
	return nil
}

// sweep runs a declarative scenario: a JSON spec file (or a built-in
// spec by name) compiled onto the workload entry points and fanned out
// on the parallel harness.
func sweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var (
		specPath   = fs.String("spec", "", "path to a scenario spec JSON file")
		name       = fs.String("name", "", "run a built-in spec by ID instead (see -list)")
		list       = fs.Bool("list", false, "list built-in spec IDs and exit")
		seed       = fs.Uint64("seed", 7, "trace seed")
		quick      = fs.Bool("quick", false, "shrink sweeps for a fast run")
		workers    = fs.Int("workers", 0, "parallel sweep workers (0 = one per CPU, 1 = sequential)")
		simWorkers = fs.Int("sim-workers", 0, "DES engine per simulation: 0/1 = sequential, >=2 = conservative parallel (identical results)")
		out        = fs.String("out", "", "directory to write a CSV result into")
		follow     = fs.Bool("follow", false, "print rows to stderr as points land (completion order); the final table still goes to stdout")
		cache      = fs.Bool("cache", false, "serve byte-identical repeats from the content-addressed result cache")
		cacheDir   = fs.String("cache-dir", ".step-cache", "result cache directory (with -cache)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile (post-run, post-GC) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, sp := range scenario.Builtin() {
			fmt.Printf("%-14s %s\n", sp.ID, sp.Title)
		}
		return nil
	}
	var sp scenario.Spec
	switch {
	case *specPath != "" && *name != "":
		return fmt.Errorf("sweep: -spec and -name are mutually exclusive")
	case *specPath != "":
		var err error
		if sp, err = scenario.Load(*specPath); err != nil {
			return err
		}
	case *name != "":
		var ok bool
		if sp, ok = scenario.LookupBuiltin(*name); !ok {
			return fmt.Errorf("sweep: unknown built-in spec %q (use -list)", *name)
		}
	default:
		return fmt.Errorf("sweep: need -spec <file.json> or -name <id>")
	}

	// The cached path shares the content-addressed store with `stepctl
	// serve`: a repeated sweep of a semantically-equal spec at the same
	// seed/quick prints the stored bytes without re-simulating.
	var (
		st  *store.Store
		key string
	)
	if *cache {
		var err error
		if st, err = store.Open(*cacheDir, 0); err != nil {
			return err
		}
		if key, err = store.Key(sp, *seed, *quick); err != nil {
			return err
		}
		if e, ok, err := st.Get(key); err != nil {
			return err
		} else if ok {
			fmt.Fprintf(os.Stderr, "sweep: cache hit %s\n", key)
			fmt.Println(e.Table)
			return writeCSV(*out, e.Manifest.SpecID, e.CSV)
		}
	}

	// With -follow, rows print to stderr in completion order as the
	// harness finishes points; stdout still carries the final assembled
	// table, so pipelines see identical bytes either way.
	var sink scenario.Sink
	if *follow {
		sink = scenario.Sink{
			Start: func(st scenario.StreamStart) {
				fmt.Fprintf(os.Stderr, "sweep: %s: %d rows over %d points\n", st.TableID, st.Rows, st.Points)
			},
			Row: func(p scenario.PointResult) {
				fmt.Fprintf(os.Stderr, "row %d/%d  %s\n", p.Index+1, p.Total, strings.Join(p.Cells, "  "))
			},
		}
	}

	return withProfiles(*cpuProfile, *memProfile, func() error {
		suite := experiments.Suite{Seed: *seed, Quick: *quick, Workers: *workers, SimWorkers: *simWorkers}
		start := time.Now()
		tb, err := scenario.RunStream(sp, suite, sink)
		if err != nil {
			return err
		}
		fmt.Println(tb.String())
		if st != nil {
			entry, err := store.NewEntry(sp, *seed, *quick, tb.String(), tb.CSV(), store.GitDescribe("."), time.Since(start))
			if err != nil {
				return err
			}
			if err := st.Put(entry); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "sweep: cached %s\n", key)
		}
		return writeCSV(*out, tb.ID, tb.CSV())
	})
}

// withProfiles brackets run with the pprof collection requested by the
// -cpuprofile/-memprofile flags (an empty path disables either). The heap
// profile is written after run completes, preceded by a GC, so it reflects
// retained memory; inspect allocation volume with
// `go tool pprof -sample_index=alloc_objects` (see PERFORMANCE.md).
func withProfiles(cpuPath, memPath string, run func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	err := run()
	if memPath != "" {
		f, ferr := os.Create(memPath)
		if ferr != nil {
			if err == nil {
				err = ferr
			}
			return err
		}
		defer f.Close()
		runtime.GC()
		if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// writeCSV writes a sweep's CSV rendering into dir (no-op when empty).
func writeCSV(dir, id, csv string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// serve runs the sweep service over HTTP: POST /sweeps, GET
// /sweeps/{id}, GET /sweeps/{id}/table, GET /specs (see
// internal/service). Results land in the same content-addressed store
// `stepctl sweep -cache` uses, so the CLI and the server share hits.
func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8372", "listen address")
		cacheDir   = fs.String("cache-dir", ".step-cache", "result cache directory")
		executors  = fs.Int("executors", 2, "concurrent sweep executors")
		workers    = fs.Int("workers", 0, "harness token pool shared by all executors (0 = one per CPU; each executor adds one implicit worker)")
		simWorkers = fs.Int("sim-workers", 0, "DES engine per simulation: 0/1 = sequential, >=2 = conservative parallel")
		lru        = fs.Int("lru", 64, "in-memory result cache entries fronting the disk store")
		leaseTTL   = fs.Duration("lease-ttl", 15*time.Second, "work-unit lease TTL for joined workers (re-dispatch latency after a worker dies)")
		workerTTL  = fs.Duration("worker-ttl", 45*time.Second, "how long a silent worker stays in the fleet")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := store.Open(*cacheDir, *lru)
	if err != nil {
		return err
	}
	svc := service.New(st, service.Options{
		Executors:   *executors,
		Workers:     *workers,
		SimWorkers:  *simWorkers,
		GitDescribe: store.GitDescribe("."),
		Fabric:      fabric.Options{LeaseTTL: *leaseTTL, WorkerTTL: *workerTTL},
	})
	defer svc.Close()

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "stepctl: serving sweeps on http://%s (cache %s)\n", *addr, st.Dir())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "stepctl: shutting down (press again to force quit)")
	// Unregister the signal handler first, so a second SIGINT/SIGTERM
	// gets default handling and kills the process even while Close
	// drains in-flight simulations.
	stop()
	// Close the service before Shutdown: it cancels every job, which
	// unblocks handlers parked in ?wait= — otherwise Shutdown would
	// hang behind them until its deadline while their sweeps run on.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutdownCtx)
}

// workerCmd joins a serving coordinator as a remote sweep-point
// worker: it long-polls /work/lease, runs each leased point with the
// same deterministic machinery `stepctl sweep` uses, and posts the raw
// result back. Determinism makes the worker's -workers/-sim-workers
// settings invisible in the result bytes. Runs until interrupted.
func workerCmd(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	var (
		join       = fs.String("join", "", "coordinator base URL (e.g. http://host:8372)")
		name       = fs.String("name", "", "worker label shown in GET /work/workers (default: hostname)")
		workers    = fs.Int("workers", 0, "local harness workers per leased point (0 = one per CPU)")
		simWorkers = fs.Int("sim-workers", 0, "DES engine per simulation: 0/1 = sequential, >=2 = conservative parallel")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *join == "" {
		return fmt.Errorf("worker: need -join <coordinator URL>")
	}
	if *name == "" {
		if host, err := os.Hostname(); err == nil {
			*name = host
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return fabric.RunWorker(ctx, fabric.WorkerOptions{
		Coordinator: *join,
		Name:        *name,
		Workers:     *workers,
		SimWorkers:  *simWorkers,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "stepctl: "+format+"\n", args...)
		},
	})
}

// watch tails a served sweep's NDJSON row stream (GET
// /sweeps/{id}/stream): rows print to stderr as they land on the
// server, and the reassembled table — byte-identical to GET
// /sweeps/{id}/table — prints to stdout once the stream's terminal
// event arrives. Cached jobs replay their stored rows, so watch works
// on finished sweeps too.
func watch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	quiet := fs.Bool("quiet", false, "suppress the per-row stderr feed; print only the final table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: stepctl watch [flags] <server> <job-id>")
	}
	base, id := strings.TrimRight(fs.Arg(0), "/"), fs.Arg(1)
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(base + "/sweeps/" + id + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("watch: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return watchStream(resp.Body, id, *quiet, os.Stdout, os.Stderr)
}

// watchStream reassembles one NDJSON event stream: rows feed errw as
// they land, the final table prints to out on a clean terminal event.
// A row index streamed twice is a protocol violation (re-dispatch must
// never double-commit), so it fails loudly instead of silently keeping
// the later copy.
func watchStream(r io.Reader, id string, quiet bool, out, errw io.Writer) error {
	var (
		tb   *harness.Table
		seen int
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev service.StreamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return fmt.Errorf("watch: bad stream line: %w", err)
		}
		switch ev.Type {
		case service.EventStart:
			tb = &harness.Table{ID: ev.SpecID, Title: ev.Title, Header: ev.Header}
			tb.Rows = make([][]string, ev.RowsTotal)
			if !quiet {
				fmt.Fprintf(errw, "watch: %s (%s): %d rows over %d points\n", ev.SpecID, ev.Key, ev.RowsTotal, ev.PointsTotal)
			}
		case service.EventRow:
			if tb == nil || ev.Index < 0 || ev.Index >= len(tb.Rows) {
				return fmt.Errorf("watch: row %d outside the announced table", ev.Index)
			}
			if tb.Rows[ev.Index] != nil {
				return fmt.Errorf("watch: row %d streamed twice", ev.Index)
			}
			seen++
			tb.Rows[ev.Index] = ev.Cells
			if !quiet {
				fmt.Fprintf(errw, "row %d/%d  %s\n", ev.Index+1, len(tb.Rows), strings.Join(ev.Cells, "  "))
			}
		case service.EventProgress:
			// Point-level progress; rows are the user-visible unit here.
		case service.EventDone:
			switch ev.State {
			case string(service.StateDone), string(service.StateCached):
				if tb == nil || seen != len(tb.Rows) {
					return fmt.Errorf("watch: job %s finished but streamed %d rows", id, seen)
				}
				tb.Notes = ev.Notes
				fmt.Fprintln(out, tb.String())
				return nil
			default:
				return fmt.Errorf("watch: job %s %s: %s", id, ev.State, ev.Error)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	return fmt.Errorf("watch: stream ended without a terminal event")
}

// exp runs registered paper experiments on the parallel harness.
func exp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ExitOnError)
	var (
		fig        = fs.String("fig", "", "run a single experiment by ID (empty = all)")
		seed       = fs.Uint64("seed", 7, "trace seed")
		quick      = fs.Bool("quick", false, "shrink sweeps for a fast run")
		workers    = fs.Int("workers", 0, "parallel sweep workers (0 = one per CPU, 1 = sequential)")
		simWorkers = fs.Int("sim-workers", 0, "DES engine per simulation: 0/1 = sequential, >=2 = conservative parallel (identical results)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile (post-run, post-GC) to this file")
		schedStats = fs.Bool("schedstats", false, "print aggregated DES scheduler-contention counters after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *schedStats {
		col := &step.SchedCollector{}
		step.SetSchedCollector(col)
		defer func() {
			step.SetSchedCollector(nil)
			s, runs := col.Snapshot()
			fmt.Printf("sched stats over %d simulation runs (parallel engine only):\n", runs)
			fmt.Printf("  lifts=%d lift-fastpath=%d (%.1f%%) kicks=%d scanned=%d woken=%d grants=%d grant-fastpath=%d scanned/lift=%.3f\n",
				s.Lifts, s.LiftFastPath, 100*safeFrac(s.LiftFastPath, s.Lifts),
				s.Kicks, s.Scanned, s.Woken, s.Grants, s.GrantFastPath, s.ScannedPerLift())
		}()
	}
	runners := experiments.All()
	if *fig != "" {
		r, ok := experiments.Lookup(*fig)
		if !ok {
			return fmt.Errorf("unknown experiment %q", *fig)
		}
		runners = []experiments.Runner{r}
	}
	return withProfiles(*cpuProfile, *memProfile, func() error {
		suite := experiments.Suite{Seed: *seed, Quick: *quick, Workers: *workers, SimWorkers: *simWorkers}
		failed := 0
		for _, oc := range experiments.RunAll(suite, runners) {
			if oc.Err != nil {
				fmt.Fprintf(os.Stderr, "stepctl: %s: %v\n", oc.Runner.ID, oc.Err)
				failed++
				continue
			}
			fmt.Println(oc.Table.String())
		}
		if failed > 0 {
			return fmt.Errorf("%d experiment(s) failed", failed)
		}
		return nil
	})
}

// safeFrac returns a/b as a float, 0 when b is 0.
func safeFrac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func demo() error {
	moe, err := step.BuildSimpleMoE(step.DefaultSimpleMoEConfig())
	if err != nil {
		return err
	}
	res, err := moe.Graph.Run(step.DefaultConfig())
	if err != nil {
		return err
	}
	rows, err := moe.OutputRows()
	if err != nil {
		return err
	}
	fmt.Printf("simplified MoE (§3.3): %d rows, %d cycles, %d bytes off-chip, %d FLOPs\n",
		len(rows), res.Cycles, res.OffchipTrafficBytes, res.TotalFLOPs)
	return nil
}

func dot() error {
	moe, err := step.BuildSimpleMoE(step.DefaultSimpleMoEConfig())
	if err != nil {
		return err
	}
	fmt.Print(moe.Graph.Dot("simplified-moe"))
	return nil
}

func moe(args []string) error {
	fs := flag.NewFlagSet("moe", flag.ExitOnError)
	var (
		model   = fs.String("model", "qwen", "model: qwen or mixtral")
		batch   = fs.Int("batch", 64, "batch size (tokens)")
		tile    = fs.Int("tile", 16, "static tile size")
		dynamic = fs.Bool("dynamic", false, "use dynamic tiling")
		regions = fs.Int("regions", 0, "parallel regions (0 = one per expert)")
		scale   = fs.Int("scale", 8, "model dimension scale-down factor")
		seed    = fs.Uint64("seed", 7, "trace seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var m step.ModelConfig
	switch *model {
	case "qwen":
		m = step.Qwen3Config()
	case "mixtral":
		m = step.MixtralConfig()
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	m = m.Scaled(*scale)
	routing, err := step.SampleExpertRouting(*batch, m.NumExperts, m.TopK, step.SkewHeavy, *seed)
	if err != nil {
		return err
	}
	layer, err := step.BuildMoELayer(step.MoELayerConfig{
		Model: m, Batch: *batch,
		TileSize: *tile, Dynamic: *dynamic, Regions: *regions,
		Routing: routing, Seed: *seed,
	})
	if err != nil {
		return err
	}
	res, err := layer.Graph.Run(step.DefaultConfig())
	if err != nil {
		return err
	}
	onchip, err := layer.OnchipBytes()
	if err != nil {
		return err
	}
	fmt.Printf("model:              %s\n", m.Name)
	fmt.Printf("cycles:             %d\n", res.Cycles)
	fmt.Printf("off-chip traffic:   %d bytes\n", res.OffchipTrafficBytes)
	fmt.Printf("on-chip requirement: %d bytes (§4.2 equation)\n", onchip)
	fmt.Printf("total FLOPs:        %d\n", res.TotalFLOPs)
	fmt.Printf("compute util:       %.4f\n", res.ComputeUtilization())
	fmt.Printf("off-chip BW util:   %.4f\n", res.OffchipBWUtilization(1024))
	return nil
}

func tables() {
	fmt.Print(`STeP operator reference (paper Tables 3-7)

Off-chip memory operators (§3.2.1)
  LinearOffChipLoad(ref Strm<R,b>, tensor, stride, shape) -> Strm<S,a+b>
      Affine tiled read, once per reference element.
  LinearOffChipStore(in Strm<S,a>)
      Linear tiled write.
  RandomOffChipLoad(raddr Strm<I,a>, table) -> Strm<S,a>
      Indexed tile fetch (time-multiplexed weight loads).
  RandomOffChipStore(waddr Strm<I,b>, wdata Strm<S,b>) -> Strm<bool,b>
      Indexed tile write with acknowledgments.

On-chip memory operators (§3.2.2)
  Bufferize(in Strm<S,a>, rank b) -> Strm<Buffer<S,b>,a-b>
      Store inner b dims to scratchpad; dynamic buffer sizes allowed.
  Streamify(bufs, ref, stride, shape) -> Strm<S,...>
      Read each buffer a dynamic number of times (affine when static).

Dynamic routing and merging operators (§3.2.3)
  Partition(in Strm<R,a>, sel Strm<SEL,b>, n) -> [Strm<R,a-b>]
      Route rank-(a-b) subtrees to selected outputs.
  Reassemble(ins [Strm<R,a>], sel Strm<SEL,b>) -> Strm<R,a+b+1>
      Merge per selector, collecting in arrival order; increments the
      closing stop token.
  EagerMerge(ins [Strm<R,a>]) -> (Strm<R,a>, Strm<SEL,0>)
      Merge in arrival order, emitting a source selector stream.

Higher-order operators (§3.2.4)
  Map(in, fn)           shape-preserving element-wise function
  Accum(in, rank, fn)   reduce inner dims (dynamic accumulators allowed)
  Scan(in, rank, fn)    running reduction, shape preserved
  FlatMap(in, rank, fn) expand each element to a rank-b fragment

Shape operators (§3.2.5)
  Flatten(min, max)  merge dims (ragged dims absorb)
  Reshape(rank, chunk[, pad])  split a dim; pads the innermost
  Promote            add a 1-extent outermost dim
  Expand(ref, rank)  repeat elements per reference structure
  Zip(a, b)          tuple two equal-shaped streams
`)
}
