// Command stepctl is the library's utility CLI.
//
// Usage:
//
//	stepctl demo               # run the §3.3 simplified MoE and report metrics
//	stepctl dot                # print the simplified MoE graph in Graphviz DOT
//	stepctl tables             # print the STeP operator reference (Tables 3–7)
//	stepctl moe [flags]        # run one MoE-layer configuration
//	stepctl exp [flags]        # run paper experiments on the parallel harness
//	stepctl sweep [flags]      # run a declarative scenario sweep (JSON spec)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"step"
	"step/internal/experiments"
	"step/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "demo":
		err = demo()
	case "dot":
		err = dot()
	case "tables":
		tables()
	case "moe":
		err = moe(os.Args[2:])
	case "exp":
		err = exp(os.Args[2:])
	case "sweep":
		err = sweep(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stepctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: stepctl <demo|dot|tables|moe|exp|sweep> [flags]")
}

// sweep runs a declarative scenario: a JSON spec file (or a built-in
// spec by name) compiled onto the workload entry points and fanned out
// on the parallel harness.
func sweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var (
		specPath   = fs.String("spec", "", "path to a scenario spec JSON file")
		name       = fs.String("name", "", "run a built-in spec by ID instead (see -list)")
		list       = fs.Bool("list", false, "list built-in spec IDs and exit")
		seed       = fs.Uint64("seed", 7, "trace seed")
		quick      = fs.Bool("quick", false, "shrink sweeps for a fast run")
		workers    = fs.Int("workers", 0, "parallel sweep workers (0 = one per CPU, 1 = sequential)")
		simWorkers = fs.Int("sim-workers", 0, "DES engine per simulation: 0/1 = sequential, >=2 = conservative parallel (identical results)")
		out        = fs.String("out", "", "directory to write a CSV result into")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, sp := range scenario.Builtin() {
			fmt.Printf("%-14s %s\n", sp.ID, sp.Title)
		}
		return nil
	}
	var sp scenario.Spec
	switch {
	case *specPath != "" && *name != "":
		return fmt.Errorf("sweep: -spec and -name are mutually exclusive")
	case *specPath != "":
		var err error
		if sp, err = scenario.Load(*specPath); err != nil {
			return err
		}
	case *name != "":
		var ok bool
		if sp, ok = scenario.LookupBuiltin(*name); !ok {
			return fmt.Errorf("sweep: unknown built-in spec %q (use -list)", *name)
		}
	default:
		return fmt.Errorf("sweep: need -spec <file.json> or -name <id>")
	}
	suite := experiments.Suite{Seed: *seed, Quick: *quick, Workers: *workers, SimWorkers: *simWorkers}
	tb, err := scenario.Run(sp, suite)
	if err != nil {
		return err
	}
	fmt.Println(tb.String())
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*out, tb.ID+".csv")
		if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// exp runs registered paper experiments on the parallel harness.
func exp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ExitOnError)
	var (
		fig        = fs.String("fig", "", "run a single experiment by ID (empty = all)")
		seed       = fs.Uint64("seed", 7, "trace seed")
		quick      = fs.Bool("quick", false, "shrink sweeps for a fast run")
		workers    = fs.Int("workers", 0, "parallel sweep workers (0 = one per CPU, 1 = sequential)")
		simWorkers = fs.Int("sim-workers", 0, "DES engine per simulation: 0/1 = sequential, >=2 = conservative parallel (identical results)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	runners := experiments.All()
	if *fig != "" {
		r, ok := experiments.Lookup(*fig)
		if !ok {
			return fmt.Errorf("unknown experiment %q", *fig)
		}
		runners = []experiments.Runner{r}
	}
	suite := experiments.Suite{Seed: *seed, Quick: *quick, Workers: *workers, SimWorkers: *simWorkers}
	failed := 0
	for _, oc := range experiments.RunAll(suite, runners) {
		if oc.Err != nil {
			fmt.Fprintf(os.Stderr, "stepctl: %s: %v\n", oc.Runner.ID, oc.Err)
			failed++
			continue
		}
		fmt.Println(oc.Table.String())
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}

func demo() error {
	moe, err := step.BuildSimpleMoE(step.DefaultSimpleMoEConfig())
	if err != nil {
		return err
	}
	res, err := moe.Graph.Run(step.DefaultConfig())
	if err != nil {
		return err
	}
	rows, err := moe.OutputRows()
	if err != nil {
		return err
	}
	fmt.Printf("simplified MoE (§3.3): %d rows, %d cycles, %d bytes off-chip, %d FLOPs\n",
		len(rows), res.Cycles, res.OffchipTrafficBytes, res.TotalFLOPs)
	return nil
}

func dot() error {
	moe, err := step.BuildSimpleMoE(step.DefaultSimpleMoEConfig())
	if err != nil {
		return err
	}
	fmt.Print(moe.Graph.Dot("simplified-moe"))
	return nil
}

func moe(args []string) error {
	fs := flag.NewFlagSet("moe", flag.ExitOnError)
	var (
		model   = fs.String("model", "qwen", "model: qwen or mixtral")
		batch   = fs.Int("batch", 64, "batch size (tokens)")
		tile    = fs.Int("tile", 16, "static tile size")
		dynamic = fs.Bool("dynamic", false, "use dynamic tiling")
		regions = fs.Int("regions", 0, "parallel regions (0 = one per expert)")
		scale   = fs.Int("scale", 8, "model dimension scale-down factor")
		seed    = fs.Uint64("seed", 7, "trace seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var m step.ModelConfig
	switch *model {
	case "qwen":
		m = step.Qwen3Config()
	case "mixtral":
		m = step.MixtralConfig()
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	m = m.Scaled(*scale)
	routing, err := step.SampleExpertRouting(*batch, m.NumExperts, m.TopK, step.SkewHeavy, *seed)
	if err != nil {
		return err
	}
	layer, err := step.BuildMoELayer(step.MoELayerConfig{
		Model: m, Batch: *batch,
		TileSize: *tile, Dynamic: *dynamic, Regions: *regions,
		Routing: routing, Seed: *seed,
	})
	if err != nil {
		return err
	}
	res, err := layer.Graph.Run(step.DefaultConfig())
	if err != nil {
		return err
	}
	onchip, err := layer.OnchipBytes()
	if err != nil {
		return err
	}
	fmt.Printf("model:              %s\n", m.Name)
	fmt.Printf("cycles:             %d\n", res.Cycles)
	fmt.Printf("off-chip traffic:   %d bytes\n", res.OffchipTrafficBytes)
	fmt.Printf("on-chip requirement: %d bytes (§4.2 equation)\n", onchip)
	fmt.Printf("total FLOPs:        %d\n", res.TotalFLOPs)
	fmt.Printf("compute util:       %.4f\n", res.ComputeUtilization())
	fmt.Printf("off-chip BW util:   %.4f\n", res.OffchipBWUtilization(1024))
	return nil
}

func tables() {
	fmt.Print(`STeP operator reference (paper Tables 3-7)

Off-chip memory operators (§3.2.1)
  LinearOffChipLoad(ref Strm<R,b>, tensor, stride, shape) -> Strm<S,a+b>
      Affine tiled read, once per reference element.
  LinearOffChipStore(in Strm<S,a>)
      Linear tiled write.
  RandomOffChipLoad(raddr Strm<I,a>, table) -> Strm<S,a>
      Indexed tile fetch (time-multiplexed weight loads).
  RandomOffChipStore(waddr Strm<I,b>, wdata Strm<S,b>) -> Strm<bool,b>
      Indexed tile write with acknowledgments.

On-chip memory operators (§3.2.2)
  Bufferize(in Strm<S,a>, rank b) -> Strm<Buffer<S,b>,a-b>
      Store inner b dims to scratchpad; dynamic buffer sizes allowed.
  Streamify(bufs, ref, stride, shape) -> Strm<S,...>
      Read each buffer a dynamic number of times (affine when static).

Dynamic routing and merging operators (§3.2.3)
  Partition(in Strm<R,a>, sel Strm<SEL,b>, n) -> [Strm<R,a-b>]
      Route rank-(a-b) subtrees to selected outputs.
  Reassemble(ins [Strm<R,a>], sel Strm<SEL,b>) -> Strm<R,a+b+1>
      Merge per selector, collecting in arrival order; increments the
      closing stop token.
  EagerMerge(ins [Strm<R,a>]) -> (Strm<R,a>, Strm<SEL,0>)
      Merge in arrival order, emitting a source selector stream.

Higher-order operators (§3.2.4)
  Map(in, fn)           shape-preserving element-wise function
  Accum(in, rank, fn)   reduce inner dims (dynamic accumulators allowed)
  Scan(in, rank, fn)    running reduction, shape preserved
  FlatMap(in, rank, fn) expand each element to a rank-b fragment

Shape operators (§3.2.5)
  Flatten(min, max)  merge dims (ragged dims absorb)
  Reshape(rank, chunk[, pad])  split a dim; pads the innermost
  Promote            add a 1-extent outermost dim
  Expand(ref, rank)  repeat elements per reference structure
  Zip(a, b)          tuple two equal-shaped streams
`)
}
