package main

import (
	"bytes"
	"strings"
	"testing"
)

// watchFeed builds an NDJSON event stream from raw lines.
func watchFeed(lines ...string) *strings.Reader {
	return strings.NewReader(strings.Join(lines, "\n") + "\n")
}

func TestWatchStreamReassembles(t *testing.T) {
	var out, errw bytes.Buffer
	err := watchStream(watchFeed(
		`{"type":"start","job_id":"job-1","spec_id":"s","title":"T","header":["A","B"],"rows_total":2,"points_total":2}`,
		`{"type":"row","index":1,"cells":["1","y"]}`,
		`{"type":"progress","points_done":1}`,
		`{"type":"row","index":0,"cells":["0","x"]}`,
		`{"type":"done","state":"done"}`,
	), "job-1", false, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "0  x") || !strings.Contains(got, "1  y") {
		t.Fatalf("reassembled table missing rows:\n%s", got)
	}
	// Rows print in arrival order; the table prints in index order.
	if !strings.Contains(errw.String(), "row 2/2") {
		t.Fatalf("per-row feed missing:\n%s", errw.String())
	}
}

// TestWatchStreamRejectsDuplicateRow: a row index streamed twice is a
// protocol violation (the fabric's at-most-once commit rule exists to
// prevent exactly this), so watch fails loudly instead of silently
// keeping the later copy.
func TestWatchStreamRejectsDuplicateRow(t *testing.T) {
	var out, errw bytes.Buffer
	err := watchStream(watchFeed(
		`{"type":"start","spec_id":"s","header":["A"],"rows_total":2,"points_total":2}`,
		`{"type":"row","index":0,"cells":["first"]}`,
		`{"type":"row","index":0,"cells":["second"]}`,
	), "job-1", true, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "streamed twice") {
		t.Fatalf("duplicate row accepted: err=%v", err)
	}
}

func TestWatchStreamRejectsRowOutsideTable(t *testing.T) {
	var out, errw bytes.Buffer
	err := watchStream(watchFeed(
		`{"type":"start","spec_id":"s","header":["A"],"rows_total":1,"points_total":1}`,
		`{"type":"row","index":5,"cells":["x"]}`,
	), "job-1", true, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "outside the announced table") {
		t.Fatalf("out-of-range row accepted: err=%v", err)
	}
}

func TestWatchStreamMissingTerminalEvent(t *testing.T) {
	var out, errw bytes.Buffer
	err := watchStream(watchFeed(
		`{"type":"start","spec_id":"s","header":["A"],"rows_total":1,"points_total":1}`,
		`{"type":"row","index":0,"cells":["x"]}`,
	), "job-1", true, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "without a terminal event") {
		t.Fatalf("truncated stream accepted: err=%v", err)
	}
}

func TestWatchStreamFailedJob(t *testing.T) {
	var out, errw bytes.Buffer
	err := watchStream(watchFeed(
		`{"type":"start","spec_id":"s","header":["A"],"rows_total":1,"points_total":1}`,
		`{"type":"done","state":"failed","error":"boom"}`,
	), "job-1", true, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("failed job not surfaced: err=%v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("failed job printed a table:\n%s", out.String())
	}
}
