// Command stepvet runs the repo-specific static-analysis suite from
// internal/lint over the module. It is the cheap certificate that a
// change cannot break the simulator's determinism, lock-discipline, and
// hot-path invariants, run before the expensive determinism-matrix
// tests.
//
// Usage:
//
//	stepvet [-json] [-list] [packages]
//
// Packages default to ./... and are resolved against the module root.
// Exit codes: 0 clean, 1 findings reported, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"step/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("stepvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list analyzers and the invariants they enforce")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: stepvet [-json] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		sort.Slice(analyzers, func(i, j int) bool { return analyzers[i].Name < analyzers[j].Name })
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "stepvet:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "stepvet:", err)
		return 2
	}
	findings := lint.Run(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "stepvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
